// Survey progress/throughput observation.
//
// A full 10k-site crawl runs for minutes (the paper's original took 480
// machine-days), so the operator needs to see it moving: sites done,
// invocations per second, ETA. ProgressMeter is the thread-safe counter the
// workers feed; ProgressPrinter renders snapshots to a stream from its own
// thread so observation never blocks the crawl.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace fu::sched {

class ProgressMeter {
 public:
  explicit ProgressMeter(std::size_t total = 0) { reset(total); }

  // Restart the clock for a run of `total` jobs.
  void reset(std::size_t total);

  // One job finished, contributing `units` of work (the survey reports
  // feature invocations). Thread-safe.
  void job_done(std::uint64_t units = 0);

  // One job satisfied without running (e.g. restored from a checkpoint).
  // Counts toward done/ETA but not toward throughput.
  void job_skipped();

  // One job that ran but exhausted its attempts. Counts toward done (the
  // scheduler will not run it again) and toward throughput — a failed crawl
  // still consumed a worker — and is surfaced in the progress line.
  void job_failed();

  struct Snapshot {
    std::size_t done = 0;
    std::size_t skipped = 0;  // subset of done
    std::size_t failed = 0;   // subset of done
    std::size_t total = 0;
    std::uint64_t units = 0;
    double elapsed_seconds = 0;
    double jobs_per_second = 0;   // executed jobs only
    double units_per_second = 0;
    double eta_seconds = 0;       // 0 once done or before any job finishes
  };
  Snapshot snapshot() const;

 private:
  std::atomic<std::size_t> done_{0};
  std::atomic<std::size_t> skipped_{0};
  std::atomic<std::size_t> failed_{0};
  std::atomic<std::uint64_t> units_{0};
  std::size_t total_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// Render "247/10000 sites  1.2M inv/s  eta 3m12s". Exposed for tests.
std::string format_progress(const ProgressMeter::Snapshot& snapshot,
                            const char* noun = "sites");

// Prints a progress line to `out` every `interval` until destroyed; the
// destructor emits one final line. Construction spawns the printer thread.
class ProgressPrinter {
 public:
  ProgressPrinter(const ProgressMeter& meter, std::ostream& out,
                  std::chrono::milliseconds interval =
                      std::chrono::milliseconds(500),
                  const char* noun = "sites");
  ~ProgressPrinter();

  ProgressPrinter(const ProgressPrinter&) = delete;
  ProgressPrinter& operator=(const ProgressPrinter&) = delete;

 private:
  const ProgressMeter& meter_;
  std::ostream& out_;
  const char* noun_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fu::sched
