// Internals shared by the two scheduler policies: the metrics family and the
// per-job execute loop (inline retries + cancellation). Included only by
// worksteal.cpp (striped reference policy) and pool.cpp (the work-stealing
// engine); nothing outside src/sched should include this.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "sched/worksteal.h"

namespace fu::sched::internal {

// Scheduler metrics, registered once. Counters are always on (a relaxed add
// per event); the queue-wait histogram needs a clock read per job, so it is
// recorded only while tracing is enabled — the 100k-near-empty-jobs
// microbench in bench_obs_overhead keeps that path honest.
struct SchedMetrics {
  obs::Counter& jobs_executed;
  obs::Counter& steal_attempts;
  obs::Counter& steals;
  obs::Counter& jobs_stolen;
  obs::Counter& retries;
  obs::Gauge& deque_depth;
  obs::Histogram& queue_wait_us;

  static SchedMetrics& get() {
    static SchedMetrics metrics{
        obs::Registry::global().counter("sched.jobs_executed"),
        obs::Registry::global().counter("sched.steal_attempts"),
        obs::Registry::global().counter("sched.steals"),
        obs::Registry::global().counter("sched.jobs_stolen"),
        obs::Registry::global().counter("sched.retries"),
        obs::Registry::global().gauge("sched.deque_depth"),
        obs::Registry::global().histogram("sched.queue_wait_us"),
    };
    return metrics;
  }
};

// Runs one job to completion (including inline retries), filling in the
// report. Failures are contained, never rethrown. `cancel` is polled before
// every attempt: once it flips, the job is reported failed with error
// "cancelled" and whatever attempt count it had consumed — a job cancelled
// before its first attempt has attempts == 0 and never touches the metrics'
// executed counter.
inline void execute_job(const Job& job, int max_attempts, std::size_t index,
                        JobReport& report, std::atomic<std::uint64_t>& retries,
                        Observer* observer, const std::atomic<bool>* cancel) {
  const int attempts_allowed = max_attempts > 0 ? max_attempts : 1;
  int attempt = 0;
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      report.ok = false;
      report.attempts = attempt;
      report.error = "cancelled";
      break;
    }
    try {
      job(index, attempt);
      report.ok = true;
      report.attempts = attempt + 1;
      report.error.clear();
      break;
    } catch (const std::exception& error) {
      report.error = error.what();
    } catch (...) {
      report.error = "unknown exception";
    }
    report.ok = false;
    report.attempts = attempt + 1;
    if (attempt + 1 >= attempts_allowed) break;
    ++attempt;
    retries.fetch_add(1, std::memory_order_relaxed);
    SchedMetrics::get().retries.add();
  }
  if (report.attempts > 0) SchedMetrics::get().jobs_executed.add();
  if (observer != nullptr) {
    observer->on_job_done(index, report.ok, report.attempts,
                          report.ok ? std::string() : report.error);
  }
}

}  // namespace fu::sched::internal
