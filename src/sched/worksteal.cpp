#include "sched/worksteal.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/progress.h"

namespace fu::sched {

namespace {

// Scheduler metrics, registered once. Counters are always on (a relaxed add
// per event); the queue-wait histogram needs a clock read per job, so it is
// recorded only while tracing is enabled — the 100k-near-empty-jobs
// microbench in bench_obs_overhead keeps that path honest.
struct SchedMetrics {
  obs::Counter& jobs_executed;
  obs::Counter& steal_attempts;
  obs::Counter& steals;
  obs::Counter& jobs_stolen;
  obs::Counter& retries;
  obs::Gauge& deque_depth;
  obs::Histogram& queue_wait_us;

  static SchedMetrics& get() {
    static SchedMetrics metrics{
        obs::Registry::global().counter("sched.jobs_executed"),
        obs::Registry::global().counter("sched.steal_attempts"),
        obs::Registry::global().counter("sched.steals"),
        obs::Registry::global().counter("sched.jobs_stolen"),
        obs::Registry::global().counter("sched.retries"),
        obs::Registry::global().gauge("sched.deque_depth"),
        obs::Registry::global().histogram("sched.queue_wait_us"),
    };
    return metrics;
  }
};

struct Task {
  std::size_t index;
  int attempt;
};

// One worker's queue. A plain mutex per deque is plenty here: survey jobs
// are whole-site crawls (milliseconds to seconds), so queue operations are
// nowhere near the contention regime that justifies a lock-free Chase-Lev
// deque.
struct WorkerQueue {
  std::mutex mutex;
  std::deque<Task> tasks;
  // Keep hot queues on separate cache lines.
  char padding[64];
};

// Runs one task to completion (including inline retries), filling in the
// report. Returns nothing; failures are contained.
void execute(const Job& job, const SchedulerOptions& options, Task task,
             JobReport& report, std::atomic<std::uint64_t>& retries,
             Observer* observer) {
  const int max_attempts = options.max_attempts > 0 ? options.max_attempts : 1;
  int attempt = task.attempt;
  for (;;) {
    try {
      job(task.index, attempt);
      report.ok = true;
      report.attempts = attempt + 1;
      report.error.clear();
      break;
    } catch (const std::exception& error) {
      report.error = error.what();
    } catch (...) {
      report.error = "unknown exception";
    }
    report.ok = false;
    report.attempts = attempt + 1;
    if (attempt + 1 >= max_attempts) break;
    ++attempt;
    retries.fetch_add(1, std::memory_order_relaxed);
    SchedMetrics::get().retries.add();
  }
  SchedMetrics::get().jobs_executed.add();
  if (observer != nullptr) {
    observer->on_job_done(task.index, report.ok, report.attempts,
                          report.ok ? std::string() : report.error);
  }
}

RunReport run_striped(std::size_t count, const Job& job,
                      const SchedulerOptions& options, Observer* observer,
                      unsigned thread_count) {
  RunReport report;
  report.jobs.resize(count);
  report.threads = thread_count;

  // Striped workers have no queues to report; still size the worker list so
  // /progress.json shows how many threads are crawling.
  if (options.progress != nullptr) {
    options.progress->set_worker_count(thread_count);
  }

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      execute(job, options, Task{i, 0}, report.jobs[i], retries, observer);
    }
  };

  if (thread_count <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  report.retries = retries.load();
  return report;
}

RunReport run_stealing(std::size_t count, const Job& job,
                       const SchedulerOptions& options, Observer* observer,
                       unsigned thread_count) {
  RunReport report;
  report.jobs.resize(count);
  report.threads = thread_count;

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> jobs_stolen{0};
  std::atomic<std::size_t> remaining{count};

  // Contiguous block distribution: worker t starts with sites
  // [t·count/T, (t+1)·count/T). Any imbalance — long-tail sites clustering
  // in one block — is what stealing exists to fix.
  std::vector<WorkerQueue> queues(thread_count);
  for (std::size_t i = 0; i < count; ++i) {
    queues[i * thread_count / count].tasks.push_back(Task{i, 0});
  }
  SchedMetrics::get().deque_depth.record_max(
      static_cast<std::int64_t>((count + thread_count - 1) / thread_count));

  ProgressMeter* const meter = options.progress;
  if (meter != nullptr) {
    meter->set_worker_count(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) {
      meter->worker_queue_depth(t, queues[t].tasks.size());
    }
  }

  // Queue wait is the delay from run start (when every task is enqueued) to
  // the moment a worker pops it. It needs a clock read per job, so it is
  // sampled only when a tracer is live.
  const bool timed = obs::tracing_enabled();
  const auto run_start = std::chrono::steady_clock::now();

  const auto worker = [&](unsigned self) {
    WorkerQueue& own = queues[self];
    for (;;) {
      if (remaining.load(std::memory_order_acquire) == 0) return;

      Task task;
      bool have = false;
      {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
          task = own.tasks.front();
          own.tasks.pop_front();
          have = true;
        }
        if (meter != nullptr) {
          meter->worker_queue_depth(self, own.tasks.size());
        }
      }
      if (have && timed) {
        SchedMetrics::get().queue_wait_us.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - run_start)
                .count()));
      }

      if (!have) {
        SchedMetrics::get().steal_attempts.add();
        // Steal half of a victim's queue, from the back — away from the
        // front the owner is popping. Loot moves through a local buffer so
        // no two queue locks are ever held at once (deadlock-free by
        // construction).
        std::vector<Task> loot;
        for (unsigned offset = 1; offset < thread_count && loot.empty();
             ++offset) {
          WorkerQueue& victim = queues[(self + offset) % thread_count];
          std::lock_guard<std::mutex> lock(victim.mutex);
          if (victim.tasks.empty()) continue;
          const std::size_t take = (victim.tasks.size() + 1) / 2;
          for (std::size_t k = 0; k < take; ++k) {
            loot.push_back(victim.tasks.back());
            victim.tasks.pop_back();
          }
        }
        if (!loot.empty()) {
          steals.fetch_add(1, std::memory_order_relaxed);
          jobs_stolen.fetch_add(loot.size(), std::memory_order_relaxed);
          SchedMetrics::get().steals.add();
          SchedMetrics::get().jobs_stolen.add(loot.size());
          if (meter != nullptr) meter->worker_stole(self, loot.size());
          if (obs::tracing_enabled()) {
            obs::trace_instant("steal", std::to_string(loot.size()));
          }
          task = loot.back();
          loot.pop_back();
          have = true;
          if (!loot.empty()) {
            std::lock_guard<std::mutex> lock(own.mutex);
            own.tasks.insert(own.tasks.end(), loot.begin(), loot.end());
            if (meter != nullptr) {
              meter->worker_queue_depth(self, own.tasks.size());
            }
          }
        }
      }

      if (!have) {
        // Everything is claimed but not finished; wait for stragglers (one
        // of which may still push retries into its own queue — but retries
        // run inline, so claimed work never reappears; this spin only ends
        // the run).
        std::this_thread::yield();
        continue;
      }

      execute(job, options, task, report.jobs[task.index], retries, observer);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  if (thread_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }

  report.retries = retries.load();
  report.steals = steals.load();
  report.jobs_stolen = jobs_stolen.load();
  return report;
}

}  // namespace

bool RunReport::all_ok() const {
  for (const JobReport& job : jobs) {
    if (!job.ok) return false;
  }
  return true;
}

std::size_t RunReport::failed_count() const {
  std::size_t n = 0;
  for (const JobReport& job : jobs) n += job.ok ? 0 : 1;
  return n;
}

RunReport run_jobs(std::size_t count, const Job& job,
                   const SchedulerOptions& options, Observer* observer) {
  unsigned thread_count = options.threads > 0
                              ? static_cast<unsigned>(options.threads)
                              : std::thread::hardware_concurrency();
  if (thread_count == 0) thread_count = 4;
  if (count > 0) {
    thread_count = std::min<unsigned>(thread_count,
                                      static_cast<unsigned>(count));
  } else {
    thread_count = 1;
  }

  if (options.policy == SchedulerOptions::Policy::kStriped) {
    return run_striped(count, job, options, observer, thread_count);
  }
  return run_stealing(count, job, options, observer, thread_count);
}

}  // namespace fu::sched
