#include "sched/worksteal.h"

#include <atomic>
#include <thread>

#include "obs/profiler.h"
#include "sched/pool.h"
#include "sched/progress.h"
#include "sched/sched_internal.h"

namespace fu::sched {

namespace {

RunReport run_striped(std::size_t count, const Job& job,
                      const SchedulerOptions& options, Observer* observer,
                      unsigned thread_count) {
  RunReport report;
  report.jobs.resize(count);
  report.threads = thread_count;

  // Striped workers have no queues to report; still size the worker list so
  // /progress.json shows how many threads are crawling.
  if (options.progress != nullptr) {
    options.progress->set_worker_count(thread_count);
  }

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::size_t> next{0};
  const auto worker = [&](unsigned self) {
    obs::prof::set_thread_label("worker-" + std::to_string(self));
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) return;
      internal::execute_job(job, options.max_attempts, i, report.jobs[i],
                            retries, observer, options.cancel);
    }
  };

  if (thread_count <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(thread_count);
    for (unsigned t = 0; t < thread_count; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& t : threads) t.join();
  }
  report.retries = retries.load();
  return report;
}

}  // namespace

bool RunReport::all_ok() const {
  for (const JobReport& job : jobs) {
    if (!job.ok) return false;
  }
  return true;
}

std::size_t RunReport::failed_count() const {
  std::size_t n = 0;
  for (const JobReport& job : jobs) n += job.ok ? 0 : 1;
  return n;
}

RunReport run_jobs(std::size_t count, const Job& job,
                   const SchedulerOptions& options, Observer* observer) {
  unsigned thread_count = options.threads > 0
                              ? static_cast<unsigned>(options.threads)
                              : std::thread::hardware_concurrency();
  if (thread_count == 0) thread_count = 4;
  if (count > 0) {
    thread_count = std::min<unsigned>(thread_count,
                                      static_cast<unsigned>(count));
  } else {
    thread_count = 1;
  }

  if (options.policy == SchedulerOptions::Policy::kStriped) {
    return run_striped(count, job, options, observer, thread_count);
  }
  // The stealing policy is the persistent pool run transiently: one batch,
  // then teardown. Long-lived callers (the survey daemon) hold a Pool
  // directly and skip the per-run thread spawn.
  Pool pool(static_cast<int>(thread_count));
  BatchOptions batch;
  batch.max_attempts = options.max_attempts;
  batch.progress = options.progress;
  batch.cancel = options.cancel;
  return pool.run(count, job, batch, observer);
}

}  // namespace fu::sched
