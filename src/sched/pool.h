// Persistent work-stealing pool.
//
// run_jobs() spawns its workers per call, which is fine for one survey but
// wrong for the survey daemon: `fu serve` accepts surveys for hours, and
// draining/respawning the worker set between jobs would serialize submission
// behind teardown. Pool keeps the workers alive across batches — a batch is
// one run()-call's worth of jobs — so surveys can be submitted back-to-back
// (or concurrently; batches interleave on the shared workers) without ever
// draining the pool.
//
// The stealing engine is the same contiguous-blocks + steal-half-from-back
// scheme run_jobs has always used; in fact run_jobs' kWorkStealing policy now
// delegates to a transient Pool, so every existing scheduler test (including
// the bit-identity ones) exercises this engine. Determinism is unchanged:
// jobs are independent and identified by index, so which worker runs a job
// can never change results.
//
// Cancellation: a batch may carry a `cancel` flag. Workers poll it before
// every attempt; once it flips, still-queued jobs of that batch are reported
// failed with error "cancelled" without running. run() still returns only
// after every job of its batch was either executed or so discarded, which is
// what makes daemon shutdown with jobs in flight clean: flip the flag, wait
// for run() to return, destroy the pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/worksteal.h"

namespace fu::sched {

class ProgressMeter;

// Per-batch knobs; the Pool-wide knob (thread count) lives on the Pool.
struct BatchOptions {
  // Attempts per job; a throw on the last attempt is recorded, not rethrown.
  int max_attempts = 1;
  // When set, per-worker queue depths and steal counts are published into
  // the meter (relaxed stores only). With concurrent batches the depths are
  // whole-queue numbers — a queue can hold tasks of several batches — which
  // is the honest thing to display anyway.
  ProgressMeter* progress = nullptr;
  // Polled before every attempt; see the cancellation note above.
  const std::atomic<bool>* cancel = nullptr;
};

class Pool {
 public:
  // Starts `threads` workers (0 = hardware concurrency). Workers sleep on a
  // condition variable while no batch is live, so an idle pool costs nothing
  // but memory.
  explicit Pool(int threads = 0);
  // Destroy only after every run() call has returned; the destructor stops
  // and joins the workers, it does not wait for foreign batches.
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  unsigned thread_count() const noexcept { return thread_count_; }

  // Run jobs [0, count) to completion (or cancellation) and block until the
  // whole batch is accounted for. Thread-safe: concurrent run() calls
  // interleave their tasks on the shared workers. Must not be called from a
  // pool worker thread (a batch cannot help execute itself).
  RunReport run(std::size_t count, const Job& job,
                const BatchOptions& options = {}, Observer* observer = nullptr);

 private:
  struct Batch;  // one run() call; lives on run()'s stack
  struct Task {
    Batch* batch = nullptr;
    std::size_t index = 0;
  };
  // One worker's queue. A plain mutex per deque is plenty here: survey jobs
  // are whole-site crawls (milliseconds to seconds), so queue operations are
  // nowhere near the contention regime that justifies a lock-free Chase-Lev
  // deque.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
    // Keep hot queues on separate cache lines.
    char padding[64];
  };

  void worker_loop(unsigned self);

  unsigned thread_count_ = 1;
  std::vector<WorkerQueue> queues_;

  // Sleep/wake machinery. `tasks_available_` counts tasks currently sitting
  // in queues; increments happen under `sleep_mutex_` (so a worker that just
  // decided to sleep cannot miss the wakeup), decrements are relaxed from
  // the workers. The 50ms wait timeout is a backstop, not the mechanism.
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> tasks_available_{0};
  bool stop_ = false;  // guarded by sleep_mutex_

  std::vector<std::thread> threads_;
};

}  // namespace fu::sched
