#include "sched/pool.h"

#include <chrono>

#include "obs/mem.h"
#include "obs/trace.h"
#include "sched/progress.h"
#include "sched/sched_internal.h"

namespace fu::sched {

using internal::SchedMetrics;

// One run() call. Workers reach it through Task::batch pointers; it lives on
// run()'s stack, which is safe because run() returns only after the last
// worker has released `mutex` with `remaining` at zero (the decrement and the
// notify both happen under the lock, so the waiter cannot observe zero while
// a worker still holds a reference).
struct Pool::Batch {
  const Job* job = nullptr;
  int max_attempts = 1;
  ProgressMeter* progress = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  Observer* observer = nullptr;
  JobReport* reports = nullptr;

  // Queue wait is the delay from batch submission (when every task is
  // enqueued) to the moment a worker pops it. It needs a clock read per job,
  // so it is sampled only when a tracer was live at submission.
  bool timed = false;
  std::chrono::steady_clock::time_point start;

  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> jobs_stolen{0};

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t remaining = 0;  // guarded by mutex
};

Pool::Pool(int threads) {
  unsigned count = threads > 0 ? static_cast<unsigned>(threads)
                               : std::thread::hardware_concurrency();
  if (count == 0) count = 4;
  thread_count_ = count;
  queues_ = std::vector<WorkerQueue>(thread_count_);
  threads_.reserve(thread_count_);
  for (unsigned t = 0; t < thread_count_; ++t) {
    threads_.emplace_back([this, t] { worker_loop(t); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

RunReport Pool::run(std::size_t count, const Job& job,
                    const BatchOptions& options, Observer* observer) {
  RunReport report;
  report.jobs.resize(count);
  report.threads = thread_count_;
  if (count == 0) return report;

  Batch batch;
  batch.job = &job;
  batch.max_attempts = options.max_attempts;
  batch.progress = options.progress;
  batch.cancel = options.cancel;
  batch.observer = observer;
  batch.reports = report.jobs.data();
  batch.timed = obs::tracing_enabled();
  batch.start = std::chrono::steady_clock::now();
  batch.remaining = count;

  // Contiguous block distribution: worker t starts with jobs
  // [t·count/T, (t+1)·count/T). Any imbalance — long-tail sites clustering
  // in one block — is what stealing exists to fix.
  for (std::size_t i = 0; i < count; ++i) {
    WorkerQueue& queue = queues_[i * thread_count_ / count];
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.tasks.push_back(Task{&batch, i});
  }
  SchedMetrics::get().deque_depth.record_max(
      static_cast<std::int64_t>((count + thread_count_ - 1) / thread_count_));
  // Queue residency: every queued-not-yet-run task counts against the sched
  // domain until a worker takes it for execution (below).
  obs::mem::add(obs::mem::Domain::kSched, count * sizeof(Task));

  if (batch.progress != nullptr) {
    batch.progress->set_worker_count(thread_count_);
    for (unsigned t = 0; t < thread_count_; ++t) {
      std::lock_guard<std::mutex> lock(queues_[t].mutex);
      batch.progress->worker_queue_depth(t, queues_[t].tasks.size());
    }
  }

  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    tasks_available_.fetch_add(count, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.cv.wait(lock, [&batch] { return batch.remaining == 0; });

  report.retries = batch.retries.load(std::memory_order_relaxed);
  report.steals = batch.steals.load(std::memory_order_relaxed);
  report.jobs_stolen = batch.jobs_stolen.load(std::memory_order_relaxed);
  return report;
}

void Pool::worker_loop(unsigned self) {
  // Name this thread's profiler stack: samples read "worker-N;stage;...".
  obs::prof::set_thread_label("worker-" + std::to_string(self));
  WorkerQueue& own = queues_[self];
  for (;;) {
    Task task;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(own.mutex);
      if (!own.tasks.empty()) {
        task = own.tasks.front();
        own.tasks.pop_front();
        have = true;
        if (task.batch->progress != nullptr) {
          task.batch->progress->worker_queue_depth(self, own.tasks.size());
        }
      }
    }

    // Steal only while work is known to exist somewhere; an idle pool must
    // not spin the steal counters (or the CPU).
    if (!have && tasks_available_.load(std::memory_order_acquire) > 0) {
      SchedMetrics::get().steal_attempts.add();
      // Steal half of a victim's queue, from the back — away from the front
      // the owner is popping. Loot moves through a local buffer so no two
      // queue locks are ever held at once (deadlock-free by construction).
      std::vector<Task> loot;
      for (unsigned offset = 1; offset < thread_count_ && loot.empty();
           ++offset) {
        const unsigned victim_index = (self + offset) % thread_count_;
        WorkerQueue& victim = queues_[victim_index];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (victim.tasks.empty()) continue;
        const std::size_t take = (victim.tasks.size() + 1) / 2;
        for (std::size_t k = 0; k < take; ++k) {
          loot.push_back(victim.tasks.back());
          victim.tasks.pop_back();
        }
        // The victim may never pop again (its queue might now be empty), so
        // the thief republishes its depth — under the victim's lock, which
        // orders every depth store for that queue.
        if (ProgressMeter* meter = loot.back().batch->progress) {
          meter->worker_queue_depth(victim_index, victim.tasks.size());
        }
      }
      if (!loot.empty()) {
        task = loot.back();
        loot.pop_back();
        have = true;
        Batch* batch = task.batch;
        batch->steals.fetch_add(1, std::memory_order_relaxed);
        batch->jobs_stolen.fetch_add(loot.size() + 1,
                                     std::memory_order_relaxed);
        SchedMetrics::get().steals.add();
        SchedMetrics::get().jobs_stolen.add(loot.size() + 1);
        if (batch->progress != nullptr) {
          batch->progress->worker_stole(self, loot.size() + 1);
        }
        if (obs::tracing_enabled()) {
          obs::trace_instant("steal", std::to_string(loot.size() + 1));
        }
        if (!loot.empty()) {
          std::lock_guard<std::mutex> lock(own.mutex);
          own.tasks.insert(own.tasks.end(), loot.begin(), loot.end());
          if (batch->progress != nullptr) {
            batch->progress->worker_queue_depth(self, own.tasks.size());
          }
        }
      }
    }

    if (!have) {
      std::unique_lock<std::mutex> lock(sleep_mutex_);
      if (stop_) return;
      if (tasks_available_.load(std::memory_order_relaxed) == 0) {
        sleep_cv_.wait_for(lock, std::chrono::milliseconds(50));
        if (stop_) return;
      }
      continue;
    }

    tasks_available_.fetch_sub(1, std::memory_order_release);
    obs::mem::sub(obs::mem::Domain::kSched, sizeof(Task));
    Batch* batch = task.batch;
    if (batch->timed) {
      SchedMetrics::get().queue_wait_us.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - batch->start)
              .count()));
    }

    internal::execute_job(*batch->job, batch->max_attempts, task.index,
                          batch->reports[task.index], batch->retries,
                          batch->observer, batch->cancel);

    {
      std::lock_guard<std::mutex> lock(batch->mutex);
      if (--batch->remaining == 0) batch->cv.notify_all();
    }
  }
}

}  // namespace fu::sched
