// Site inspector: a mini devtools for the synthetic web. Fetches a page,
// parses it, lists every subresource it references, and shows what each
// installed blocking list would do to it — the request pipeline the
// measuring browser runs, made visible.
//
// Usage: site_inspector [domain] [path]
#include <iostream>

#include "blocker/extensions.h"
#include "core/featureusage.h"
#include "dom/html.h"

int main(int argc, char** argv) {
  using namespace fu;

  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 200;
  net::SyntheticWeb web(catalog, config);

  const std::string domain = argc > 1 ? argv[1] : web.sites()[4].domain;
  const std::string path = argc > 2 ? argv[2] : "/";
  const net::SitePlan* site = web.site_by_host(domain);
  if (site == nullptr) {
    std::cerr << "unknown domain " << domain << " (try "
              << web.sites()[0].domain << ")\n";
    return 1;
  }

  const auto url = net::Url::parse("http://" + domain + path);
  const auto res = web.fetch(*url);
  if (!res) {
    std::cerr << domain << path << " did not respond\n";
    return 1;
  }

  const auto doc = dom::parse_html(res->body);
  std::cout << domain << path << "  (" << res->body.size() << " bytes, "
            << doc->node_count() << " DOM nodes)\n\n";

  const auto ads = blocker::make_ad_blocker(web);
  const auto trackers = blocker::make_tracking_blocker(web);
  const std::string page_domain = net::registrable_domain(url->host());

  const auto verdict = [&](const net::Url& resource,
                           blocker::ResourceType type) {
    blocker::RequestContext ctx;
    ctx.page_domain = page_domain;
    ctx.third_party = net::registrable_domain(resource.host()) != page_domain;
    ctx.type = type;
    std::string out;
    if (ads->should_block(resource, ctx)) out += " [blocked:ABP]";
    if (trackers->should_block(resource, ctx)) out += " [blocked:Ghostery]";
    if (out.empty()) out = ctx.third_party ? " [3rd-party, allowed]" : "";
    return out;
  };

  std::cout << "scripts:\n";
  for (dom::Element* el : doc->get_elements_by_tag("script")) {
    if (!el->has_attribute("src")) {
      std::cout << "  <inline, " << el->text_content().size() << " bytes>\n";
      continue;
    }
    const auto resource = url->resolve(el->attribute("src"));
    std::cout << "  " << resource->spec()
              << verdict(*resource, blocker::ResourceType::kScript) << "\n";
  }

  std::cout << "\nframes:\n";
  for (dom::Element* el : doc->get_elements_by_tag("iframe")) {
    const auto resource = url->resolve(el->attribute("src"));
    std::cout << "  " << resource->spec()
              << verdict(*resource, blocker::ResourceType::kSubdocument)
              << "\n";
  }

  std::cout << "\nlinks:\n";
  for (dom::Element* el : doc->get_elements_by_tag("a")) {
    const auto target = url->resolve(el->attribute("href"));
    std::cout << "  " << target->spec()
              << (net::same_site(*target, *url) ? "" : "  (offsite)") << "\n";
  }

  std::cout << "\nstandards placed on this site:\n  ";
  for (const net::StandardPlacement& p : site->placements) {
    std::cout << catalog.standard(p.standard).abbreviation
              << (p.blockable ? "*" : "") << (p.authenticated ? "^" : "")
              << " ";
  }
  std::cout << "\n  (* = served from ad/tracker scripts, ^ = login-gated)\n";
  return 0;
}
