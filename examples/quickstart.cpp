// Quickstart: build the catalog, spin up the synthetic web, visit one site
// with an instrumented browser (with and without blockers) and print what
// the measuring extension saw — the smallest end-to-end use of the library.
#include <iostream>

#include "core/featureusage.h"

int main() {
  using namespace fu;

  // 1. The feature catalog: 1,392 JavaScript-exposed features in 75
  //    standards, extracted from generated WebIDL.
  catalog::Catalog catalog;
  std::cout << "catalog: " << catalog.features().size() << " features in "
            << catalog.standard_count() << " standards\n";
  const catalog::Feature* create_element =
      catalog.find_feature("Document.prototype.createElement");
  std::cout << "example feature: " << create_element->full_name
            << " (standard: "
            << catalog.standard(create_element->standard).name
            << ", first shipped in Firefox " << create_element->first_version
            << ")\n\n";

  // 2. A small synthetic web.
  net::SyntheticWeb::Config web_config;
  web_config.site_count = 50;
  net::SyntheticWeb web(catalog, web_config);
  const net::SitePlan& site = web.sites().front();
  std::cout << "visiting " << site.domain << " (Alexa rank " << site.rank
            << ", " << site.placements.size() << " standards placed)\n\n";

  // 3. Crawl it once with a stock browser...
  crawler::CrawlConfig stock;
  const crawler::SiteVisit plain = crawler::crawl_site(web, stock, site, 1);

  // ...and once with AdBlock Plus + Ghostery installed.
  crawler::CrawlConfig blocking;
  blocking.browser.ad_blocker = blocker::make_ad_blocker(web);
  blocking.browser.tracking_blocker = blocker::make_tracking_blocker(web);
  const crawler::SiteVisit shielded =
      crawler::crawl_site(web, blocking, site, 1);

  std::cout << "default browser:   " << plain.features.count()
            << " distinct features, " << plain.invocations
            << " invocations over " << plain.pages_visited << " pages\n";
  std::cout << "with blockers:     " << shielded.features.count()
            << " distinct features, " << shielded.invocations
            << " invocations (" << shielded.scripts_blocked
            << " scripts blocked)\n\n";

  // 4. Features that disappeared when the blockers went in.
  std::cout << "features only seen without blockers:\n";
  int shown = 0;
  for (std::size_t f = 0; f < plain.features.size(); ++f) {
    if (plain.features.test(f) && !shielded.features.test(f)) {
      const catalog::Feature& feature =
          catalog.feature(static_cast<catalog::FeatureId>(f));
      std::cout << "  " << feature.full_name << "  ["
                << catalog.standard(feature.standard).abbreviation << "]\n";
      if (++shown >= 12) {
        std::cout << "  ...\n";
        break;
      }
    }
  }
  return 0;
}
