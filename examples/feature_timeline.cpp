// Feature timeline: explore the catalog the way §3.4 does — when did each
// standard land in Firefox, which release carried a given feature first, and
// how does age relate to eventual popularity.
//
// Usage: feature_timeline [feature-name]
//   e.g. feature_timeline Navigator.prototype.vibrate
#include <iostream>
#include <map>

#include "catalog/releases.h"
#include "core/featureusage.h"

int main(int argc, char** argv) {
  using namespace fu;
  catalog::Catalog cat;

  if (argc > 1) {
    const catalog::Feature* f = cat.find_feature(argv[1]);
    if (f == nullptr) {
      std::cerr << "unknown feature: " << argv[1] << "\n";
      return 1;
    }
    const catalog::StandardSpec& spec = cat.standard(f->standard);
    std::cout << f->full_name << "\n"
              << "  standard:    " << spec.name << " (" << spec.abbreviation
              << ")\n"
              << "  kind:        "
              << (f->kind == catalog::FeatureKind::kMethod ? "method"
                                                           : "property")
              << "\n"
              << "  first in:    Firefox " << f->first_version << " ("
              << f->implemented.to_string() << ")\n"
              << "  calibrated:  ~" << f->target_sites
              << " of 10,000 sites\n";
    return 0;
  }

  std::cout << "release timeline: " << catalog::releases().size()
            << " Firefox releases from "
            << catalog::releases().front().date.to_string() << " (1.0) to "
            << catalog::releases().back().date.to_string() << " (46.0.1)\n\n";

  // Standards by introduction year, with the §3.4 "most popular feature"
  // dating rule, and their calibrated popularity.
  std::map<int, std::vector<catalog::StandardId>> by_year;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    by_year[cat.standard_implementation_date(sid).year()].push_back(sid);
  }
  for (const auto& [year, standards] : by_year) {
    std::cout << year << ":\n";
    for (const catalog::StandardId sid : standards) {
      const catalog::StandardSpec& spec = cat.standard(sid);
      std::cout << "  " << spec.abbreviation;
      for (std::size_t pad = spec.abbreviation.size(); pad < 8; ++pad) {
        std::cout << ' ';
      }
      if (spec.target_sites == 0) {
        std::cout << "never observed in the Alexa 10k";
      } else {
        std::cout << "~" << spec.target_sites << " sites";
      }
      std::cout << "  (" << spec.name << ")\n";
    }
  }
  std::cout << "\ntip: pass a feature name for details, e.g.\n"
               "  feature_timeline Navigator.prototype.vibrate\n";
  return 0;
}
