// Blocker impact: what installing AdBlock Plus and/or Ghostery does to the
// features a browser executes — including how to author and install a
// *custom* filter list through the public API.
//
// Crawls a sample of sites four ways (stock, ad-blocking, tracking-blocking,
// both) and once more with a hand-written filter list, then reports feature
// and invocation deltas.
#include <iostream>

#include "core/featureusage.h"
#include "support/strings.h"

namespace {

struct Totals {
  std::uint64_t invocations = 0;
  std::size_t features = 0;
  int scripts_blocked = 0;
};

Totals crawl_sample(const fu::net::SyntheticWeb& web,
                    const fu::crawler::CrawlConfig& config, int sample) {
  Totals totals;
  fu::support::DynamicBitset all(web.feature_catalog().features().size());
  for (int i = 0; i < sample; ++i) {
    const fu::crawler::SiteVisit visit =
        fu::crawler::crawl_site(web, config, web.sites()[i], 42);
    totals.invocations += visit.invocations;
    totals.scripts_blocked += visit.scripts_blocked;
    all |= visit.features;
  }
  totals.features = all.count();
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fu;
  const int sample = argc > 1 ? std::atoi(argv[1]) : 60;

  catalog::Catalog catalog;
  net::SyntheticWeb::Config web_config;
  web_config.site_count = std::max(sample, 60);
  net::SyntheticWeb web(catalog, web_config);

  const auto ad_blocker = blocker::make_ad_blocker(web);
  const auto tracking_blocker = blocker::make_tracking_blocker(web);

  const auto run = [&](const char* label,
                       std::shared_ptr<const blocker::BlockingExtension> ads,
                       std::shared_ptr<const blocker::BlockingExtension>
                           trackers) {
    crawler::CrawlConfig config;
    config.browser.ad_blocker = std::move(ads);
    config.browser.tracking_blocker = std::move(trackers);
    const Totals t = crawl_sample(web, config, sample);
    std::printf("%-24s %8zu features %10llu invocations %6d scripts blocked\n",
                label, t.features,
                static_cast<unsigned long long>(t.invocations),
                t.scripts_blocked);
    return t;
  };

  std::cout << "crawling " << sample << " sites under four configurations:\n";
  const Totals plain = run("stock browser", nullptr, nullptr);
  run("AdBlock Plus only", ad_blocker, nullptr);
  run("Ghostery only", nullptr, tracking_blocker);
  const Totals both = run("both extensions", ad_blocker, tracking_blocker);

  std::cout << "\nblocking removed "
            << support::percent(
                   1.0 - static_cast<double>(both.invocations) /
                             static_cast<double>(plain.invocations))
            << " of all feature invocations\n";

  // A custom list: block one specific ad network and nothing else.
  std::cout << "\ncustom list blocking a single ad network ("
            << web.ad_hosts().front() << "):\n";
  const std::string custom_rules =
      "! my personal list\n||" + web.ad_hosts().front() + "^$third-party\n";
  auto custom = std::make_shared<const blocker::BlockingExtension>(
      "MyList", blocker::FilterList::parse(custom_rules, "my-list"));
  run("custom single-host list", custom, nullptr);
  return 0;
}
