// Instrument a hand-written page: the Figure 2 workflow on your own HTML.
//
// Builds an instrumented browser session, loads a page you control (here a
// string, exercising canvas, XHR, storage and a property write), interacts
// with it, and prints the recorder's CSV — the same
// "<config>,<domain>,<feature>,<count>" rows the paper's extension logs.
#include <iostream>

#include "browser/session.h"
#include "catalog/catalog.h"
#include "dom/html.h"
#include "script/parser.h"

int main() {
  using namespace fu;

  catalog::Catalog catalog;
  script::Interpreter interp;
  browser::UsageRecorder recorder(catalog.features().size());
  browser::DomBindings bindings(interp, catalog);
  browser::MeasuringExtension extension(catalog, recorder);

  // §4.2: hooks go in before any page content runs.
  extension.inject(interp, bindings);
  std::cout << "instrumented " << extension.methods_shimmed()
            << " methods, watching " << extension.properties_watched()
            << " singleton objects\n\n";

  // A small page: scripts run immediately and on click.
  const char* page_html = R"(
    <!doctype html>
    <html><head>
      <script>
        var canvas = document.createElement("canvas");
        var xhr = new XMLHttpRequest();
        xhr.open("GET", "/api/data");
        xhr.send();
        localStorage.setItem("visited", "yes");
        // a property write on a singleton: counted only if the name is one
        // of the catalog's 1,392 instrumented endpoints (§4.2.2)
        navigator.profileToken = "u-123";
        window.addEventListener("click", function () {
          var ctx = new CanvasRenderingContext2D();
          crypto.getRandomValues(16);
        });
      </script>
    </head><body><button id="go">Go</button></body></html>
  )";

  auto dom = dom::parse_html(page_html);
  const script::ObjectRef doc_wrapper = bindings.begin_page(*dom);
  extension.watch_singleton(interp, doc_wrapper, "Document");

  // Execute the page's scripts in document order.
  for (dom::Element* el : dom->get_elements_by_tag("script")) {
    const auto program = script::parse_program(el->text_content());
    interp.execute(program);
  }

  // Simulate the user clicking twice.
  for (int click = 0; click < 2; ++click) {
    std::vector<script::Value> handlers;
    for (const auto& [type, fn] : bindings.hooks().listeners) {
      if (type == "click") handlers.push_back(fn);
    }
    for (const script::Value& fn : handlers) {
      interp.call_function(fn, script::Value(bindings.window()), {});
    }
  }

  std::cout << "recorded feature use (CSV, as in Figure 2):\n";
  recorder.write_csv(std::cout, catalog, "default", "example.com");
  std::cout << "\ntotal invocations: " << recorder.total_invocations() << "\n";
  return 0;
}
