// Full report: run the survey and export every regenerated table, figure and
// CSV data file to a directory — the one-command "reproduce the paper"
// entry point.
//
// Usage: full_report [output-dir] (scale via FU_SITES / FU_PASSES)
#include <iostream>

#include "analysis/report.h"
#include "core/featureusage.h"

int main(int argc, char** argv) {
  const std::string directory = argc > 1 ? argv[1] : "report";

  fu::Reproduction repro(fu::ReproductionConfig::from_env());
  std::cout << "surveying " << repro.config().sites << " sites ("
            << repro.config().passes << " passes per configuration)...\n";
  const fu::analysis::Analysis& analysis = repro.analysis();

  const int files = fu::analysis::write_report(directory, analysis);
  std::cout << "wrote " << files << " files to " << directory << "/\n\n";
  std::cout << fu::analysis::render_headline(analysis);
  return 0;
}
