// Mini survey: the paper's full methodology at 1/20th scale.
//
// Runs the four browsing configurations (default, ad+tracking blocking,
// ad-only, tracking-only) over a 500-site synthetic Alexa list, then prints
// the crawl summary, the most/least popular standards and the most heavily
// blocked ones — the numbers behind Tables 1 and 2.
//
// Usage: survey_mini [sites] [passes]
#include <algorithm>
#include <iostream>

#include "core/featureusage.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace fu;

  ReproductionConfig config;
  config.sites = argc > 1 ? std::atoi(argv[1]) : 500;
  config.passes = argc > 2 ? std::atoi(argv[2]) : 5;
  Reproduction repro(config);

  const crawler::SurveyResults& survey = repro.survey();
  const analysis::Analysis& an = repro.analysis();
  const catalog::Catalog& cat = repro.catalog();

  std::cout << analysis::render_table1(survey) << "\n";

  struct Row {
    catalog::StandardId id;
    int sites;
  };
  std::vector<Row> rows;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    rows.push_back(
        {sid, an.standard_sites(sid, analysis::BrowsingConfig::kDefault)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.sites > b.sites; });

  std::cout << "most popular standards:\n";
  for (std::size_t i = 0; i < 8; ++i) {
    const auto& spec = cat.standard(rows[i].id);
    std::cout << "  " << spec.abbreviation << "  " << rows[i].sites
              << " sites  (" << spec.name << ")\n";
  }

  std::cout << "\nnever observed:\n  ";
  int unused = 0;
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    if (it->sites != 0) break;
    std::cout << cat.standard(it->id).abbreviation << " ";
    ++unused;
  }
  std::cout << "(" << unused << " standards)\n";

  std::sort(rows.begin(), rows.end(), [&an](const Row& a, const Row& b) {
    return an.standard_block_rate(a.id) > an.standard_block_rate(b.id);
  });
  std::cout << "\nmost heavily blocked (of standards on >=10 sites):\n";
  int shown = 0;
  for (const Row& row : rows) {
    if (row.sites < 10) continue;
    const auto& spec = cat.standard(row.id);
    std::cout << "  " << spec.abbreviation << "  "
              << support::percent(an.standard_block_rate(row.id)) << " of "
              << row.sites << " sites\n";
    if (++shown >= 8) break;
  }
  return 0;
}
