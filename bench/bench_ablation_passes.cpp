// Ablation (§6.1): why five passes? Rerun the crawl with 1..8 passes per
// site and report cumulative standard coverage — the marginal value of each
// extra pass, the continuous version of Table 3's per-round deltas.
#include <set>

#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Ablation — measurement passes per site", repro);
  const auto& web = repro.web();
  const auto& cat = repro.catalog();
  const int sample = std::min<int>(300, static_cast<int>(web.sites().size()));
  constexpr int kMaxPasses = 8;

  // cumulative standards per site after each pass, averaged
  std::vector<double> cumulative(kMaxPasses, 0);
  int measured = 0;

  for (int i = 0; i < sample; ++i) {
    const fu::net::SitePlan& site = web.sites()[i];
    if (site.status != fu::net::SiteStatus::kOk) continue;
    ++measured;

    fu::crawler::CrawlConfig config;
    std::set<fu::catalog::StandardId> seen;
    for (int pass = 0; pass < kMaxPasses; ++pass) {
      const auto visit = fu::crawler::crawl_site(
          web, config, site,
          0xab1a7e ^ fu::support::fnv1a(site.domain) ^
              static_cast<std::uint64_t>(pass));
      for (std::size_t f = 0; f < visit.features.size(); ++f) {
        if (visit.features.test(f)) {
          seen.insert(
              cat.feature(static_cast<fu::catalog::FeatureId>(f)).standard);
        }
      }
      cumulative[static_cast<std::size_t>(pass)] +=
          static_cast<double>(seen.size());
    }
  }

  std::printf("%-8s %22s %16s\n", "passes", "avg standards seen",
              "marginal gain");
  std::printf("%s\n", std::string(50, '-').c_str());
  double previous = 0;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    const double avg = cumulative[static_cast<std::size_t>(pass)] / measured;
    std::printf("%-8d %22.2f %16.2f\n", pass + 1, avg, avg - previous);
    previous = avg;
  }
  std::printf(
      "\nshape check: gains collapse after ~4-5 passes (paper: no new "
      "standards by\nround 5), so five passes per configuration suffice.\n");
  return 0;
}
