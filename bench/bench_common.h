// Shared plumbing for the table/figure benches.
//
// Every bench runs the full pipeline at the scale given by the environment
// (FU_SITES, default 10,000 like the paper; FU_PASSES, default 5) and prints
// the regenerated artifact. Survey results are cached on disk (FU_CACHE_DIR,
// default ./fu_cache), so the first bench of a configuration pays for the
// crawl and the rest load it in milliseconds.
#pragma once

#include <chrono>
#include <iostream>

#include "core/featureusage.h"

namespace fu::bench {

inline Reproduction make_reproduction() {
  return Reproduction(ReproductionConfig::from_env());
}

inline void banner(const char* artifact, const Reproduction& repro) {
  std::cout << "=== " << artifact << " ===\n"
            << "reproduction of: Snyder et al., \"Browser Feature Usage on "
               "the Modern Web\" (IMC 2016)\n"
            << "survey scale: " << repro.config().sites << " sites, "
            << repro.config().passes
            << " passes per configuration, seed 0x" << std::hex
            << repro.config().seed << std::dec << "\n\n";
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace fu::bench
