// Regenerates Table 2: per-standard popularity, block rate and CVE count
// for every standard used on >=1% of sites or carrying a CVE.
//
// Shape to check against the paper: the DOM family near the top of the
// popularity range with ~0% block rates; SVG at ~16% of sites but ~87%
// blocked; Canvas 15 CVEs / SVG 14 / WebGL 13 leading the CVE column.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Table 2 — standard popularity and block rates", repro);
  std::cout << fu::analysis::render_table2(repro.analysis());
  return 0;
}
