// bench_prof_overhead — what does always-compiled-in profiling cost?
//
// Three answers, mirroring bench_obs_overhead:
//
//   1. Disabled hooks: with no profiler live, a StageFrame (and the script
//      frame hook in the interpreter) must cost one relaxed atomic load and
//      a branch. This bench *asserts* the bound (generously, 150 ns per
//      push/pop pair, ~50x the expected cost) so a regression that sneaks a
//      lock or allocation onto the disabled path fails the bench job, not a
//      profiling session later.
//   2. Enabled hooks: the push/pop cost under a live sampler, in ns/frame.
//   3. The real question: wall-clock of a survey unprofiled vs profiled at
//      the default 97 Hz, with a check that both runs measure identical
//      invocation counts (the bit-identity claim, cross-checked by
//      engine_identity_test on exact bytes).
//
// Scale the survey with FU_SITES (default 100) and FU_PASSES (default 2).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "obs/profiler.h"

namespace {

using namespace fu;

// Keep the optimizer from deleting the measured loops.
volatile std::uint64_t g_sink = 0;

double baseline_ns(std::size_t iters) {
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    g_sink = g_sink + 1;
  }
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double disabled_frame_ns(std::size_t iters) {
  static const char* kName = "bench-prof-disabled";
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::StageFrame frame(kName);
    g_sink = g_sink + 1;
  }
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double enabled_frame_ns(std::size_t iters) {
  obs::Profiler profiler(97.0);
  profiler.start();
  static const char* kName = "bench-prof-enabled";
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::StageFrame frame(kName);
    g_sink = g_sink + 1;
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  profiler.stop();
  return ns;
}

double time_survey(const net::SyntheticWeb& web,
                   const crawler::SurveyOptions& options,
                   std::uint64_t& invocations) {
  const bench::Timer timer;
  const crawler::SurveyResults results = crawler::run_survey(web, options);
  invocations = results.total_invocations();
  return timer.seconds();
}

}  // namespace

int main() {
  std::printf("=== profiling overhead ===\n\n");

  constexpr std::size_t kIters = 2'000'000;
  const double base = baseline_ns(kIters);
  const double disabled = disabled_frame_ns(kIters);
  const double enabled = enabled_frame_ns(1'000'000);
  std::printf("-- hot-path microcosts (ns/frame push+pop, %zuk iters) --\n",
              kIters / 1000);
  std::printf("  %-28s %8.2f\n", "baseline (sink store)", base);
  std::printf("  %-28s %8.2f\n", "StageFrame, profiler off", disabled);
  std::printf("  %-28s %8.2f\n", "StageFrame, profiler on", enabled);

  // The contract this bench exists to enforce: the disabled frame is within
  // noise of doing nothing — one relaxed load and a branch.
  const double disabled_cost = disabled - base;
  if (disabled_cost > 150.0) {
    std::fprintf(stderr,
                 "FAIL: disabled StageFrame costs %.1f ns over baseline "
                 "(budget 150 ns) — something heavy crept onto the "
                 "profiling-off path\n",
                 disabled_cost);
    return 1;
  }
  std::printf("  disabled-frame overhead %.2f ns: within budget (150 ns)\n\n",
              disabled_cost);

  // Whole-survey cost, off vs on at the default rate.
  ReproductionConfig config = ReproductionConfig::from_env();
  if (std::getenv("FU_SITES") == nullptr) config.sites = 100;
  if (std::getenv("FU_PASSES") == nullptr) config.passes = 2;
  Reproduction repro(config);
  const net::SyntheticWeb& web = repro.web();

  crawler::SurveyOptions options;
  options.passes = config.passes;
  options.seed = config.seed;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.threads = 4;

  std::printf("-- %d-site survey, %d passes, 4 threads --\n", config.sites,
              config.passes);
  std::uint64_t plain_inv = 0, profiled_inv = 0;
  const double plain_s = time_survey(web, options, plain_inv);

  obs::Profiler profiler(97.0);
  profiler.start();
  const double profiled_s = time_survey(web, options, profiled_inv);
  const obs::FoldedProfile profile = profiler.stop();

  std::printf("  %-28s %8.2f s\n", "profiling off", plain_s);
  std::printf("  %-28s %8.2f s  (%llu samples, %+.1f%%)\n", "profiling on",
              profiled_s,
              static_cast<unsigned long long>(profile.total()),
              (profiled_s / plain_s - 1.0) * 100.0);
  if (plain_inv != profiled_inv) {
    std::fprintf(stderr,
                 "FAIL: profiling changed the survey (invocations %llu vs "
                 "%llu)\n",
                 static_cast<unsigned long long>(plain_inv),
                 static_cast<unsigned long long>(profiled_inv));
    return 1;
  }
  std::printf("  results identical with profiling on\n");
  return 0;
}
