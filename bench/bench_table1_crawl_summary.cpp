// Regenerates Table 1: the crawl's summary statistics.
//
// Paper values (2016 live-web crawl): 9,733 domains measured; 480 days of
// interaction; 2,240,484 pages visited; 21.5B feature invocations. Our
// substrate is a simulator, so absolute invocation counts differ; the shape
// to check is domains-measured ≈ 97% of the list and pages ≈ sites × 10
// passes × ~13 pages.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::Timer timer;
  const auto& survey = repro.survey();
  fu::bench::banner("Table 1 — crawl summary", repro);
  std::cout << fu::analysis::render_table1(survey);
  std::cout << "\npaper: 9,733 domains / 480 days / 2,240,484 pages / "
               "21,511,926,733 invocations\n";
  std::cout << "(survey time " << timer.seconds() << "s)\n";
  return 0;
}
