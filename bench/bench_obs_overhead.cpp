// bench_obs_overhead — what does always-compiled-in observability cost?
//
// Three answers:
//
//   1. Disabled tracing: a TraceSpan with no tracer installed must cost a
//      relaxed load and a branch — single-digit nanoseconds. This bench
//      *asserts* the bound (generously, 150 ns/span, ~50x the expected
//      cost) so a regression that sneaks a lock or allocation onto the
//      disabled path fails the build's bench job, not a profiling session
//      three months later.
//   2. Metric counters: the always-on relaxed sharded add, in ns/add.
//   3. The real question: wall-clock of a survey untraced vs traced, with
//      a check that both produce identical invocation counts.
//
// Scale the survey with FU_SITES (default 100) and FU_PASSES (default 2).
//
// A fourth section measures the live endpoint: wall-clock of a survey with
// `--serve 0` (server thread + delta ticks + progress meter + an operator
// polling once per 250 ms) vs the same survey unserved, again with an
// identical-results check.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/server.h"
#include "obs/trace.h"

namespace {

using namespace fu;

// Keep the optimizer from deleting the measured loops.
volatile std::uint64_t g_sink = 0;

double disabled_span_ns(std::size_t iters) {
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::TraceSpan span("bench-disabled");
    g_sink = g_sink + 1;
  }
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double baseline_ns(std::size_t iters) {
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    g_sink = g_sink + 1;
  }
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double counter_add_ns(std::size_t iters) {
  obs::Counter& counter = obs::Registry::global().counter("bench.counter");
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) counter.add();
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double enabled_span_ns(std::size_t iters) {
  obs::Tracer tracer;
  tracer.start();
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::TraceSpan span("bench-enabled");
    g_sink = g_sink + 1;
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  tracer.stop();
  return ns;
}

double time_survey(const net::SyntheticWeb& web,
                   const crawler::SurveyOptions& options,
                   std::uint64_t& invocations) {
  const bench::Timer timer;
  const crawler::SurveyResults results = crawler::run_survey(web, options);
  invocations = results.total_invocations();
  return timer.seconds();
}

}  // namespace

int main() {
  std::printf("=== observability overhead ===\n\n");

  constexpr std::size_t kIters = 2'000'000;
  const double base = baseline_ns(kIters);
  const double disabled = disabled_span_ns(kIters);
  const double counter = counter_add_ns(kIters);
  const double enabled = enabled_span_ns(1'000'000);
  std::printf("-- hot-path microcosts (ns/op, %zuk iterations) --\n",
              kIters / 1000);
  std::printf("  %-28s %8.2f\n", "baseline (sink store)", base);
  std::printf("  %-28s %8.2f\n", "TraceSpan, tracing off", disabled);
  std::printf("  %-28s %8.2f\n", "Counter::add", counter);
  std::printf("  %-28s %8.2f\n", "TraceSpan, tracing on", enabled);

  // The contract this bench exists to enforce: the disabled span is within
  // noise of doing nothing. 150 ns is ~50x the expected cost — loose enough
  // for any CI machine, tight enough to catch a lock or allocation.
  const double disabled_cost = disabled - base;
  if (disabled_cost > 150.0) {
    std::fprintf(stderr,
                 "FAIL: disabled TraceSpan costs %.1f ns over baseline "
                 "(budget 150 ns) — something heavy crept onto the "
                 "tracing-off path\n",
                 disabled_cost);
    return 1;
  }
  std::printf("  disabled-span overhead %.2f ns/span: within budget "
              "(150 ns)\n\n",
              disabled_cost);

  // Whole-survey cost, off vs on.
  ReproductionConfig config = ReproductionConfig::from_env();
  if (std::getenv("FU_SITES") == nullptr) config.sites = 100;
  if (std::getenv("FU_PASSES") == nullptr) config.passes = 2;
  Reproduction repro(config);
  const net::SyntheticWeb& web = repro.web();

  crawler::SurveyOptions options;
  options.passes = config.passes;
  options.seed = config.seed;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.threads = 4;

  std::printf("-- %d-site survey, %d passes, 4 threads --\n", config.sites,
              config.passes);
  std::uint64_t untraced_inv = 0, traced_inv = 0;
  const double untraced_s = time_survey(web, options, untraced_inv);

  obs::Tracer tracer;
  tracer.start();
  const double traced_s = time_survey(web, options, traced_inv);
  const std::size_t spans = tracer.stop().size();

  std::printf("  %-28s %8.2f s\n", "tracing off", untraced_s);
  std::printf("  %-28s %8.2f s  (%zu spans, %+.1f%%)\n", "tracing on",
              traced_s, spans, (traced_s / untraced_s - 1.0) * 100.0);
  if (untraced_inv != traced_inv) {
    std::fprintf(stderr,
                 "FAIL: tracing changed the survey (invocations %llu vs "
                 "%llu)\n",
                 static_cast<unsigned long long>(untraced_inv),
                 static_cast<unsigned long long>(traced_inv));
    return 1;
  }
  std::printf("  results identical with tracing on\n\n");

  // Live serving: the same survey with `--serve 0` — server thread, 1 s
  // delta ticks, progress meter attached — must cost noise, and must not
  // change a single measured bit.
  crawler::SurveyOptions served_options = options;
  served_options.serve_port = 0;
  std::uint64_t served_inv = 0;
  const double served_s = time_survey(web, served_options, served_inv);
  std::printf("-- live endpoint (--serve 0) --\n");
  std::printf("  %-28s %8.2f s\n", "serving off", untraced_s);
  std::printf("  %-28s %8.2f s  (%+.1f%%)\n", "serving on", served_s,
              (served_s / untraced_s - 1.0) * 100.0);
  if (untraced_inv != served_inv) {
    std::fprintf(stderr,
                 "FAIL: serving changed the survey (invocations %llu vs "
                 "%llu)\n",
                 static_cast<unsigned long long>(untraced_inv),
                 static_cast<unsigned long long>(served_inv));
    return 1;
  }
  std::printf("  results identical with serving on\n");

  // Request handling itself, measured against a standalone server while
  // worker threads hammer the registry (the worst case for snapshot merge).
  {
    obs::ServerOptions server_options;
    server_options.port = 0;
    obs::Server server(std::move(server_options));
    if (!server.ok()) {
      std::fprintf(stderr, "FAIL: bench server did not bind: %s\n",
                   server.error().c_str());
      return 1;
    }
    std::atomic<bool> stop{false};
    std::thread hammer([&stop] {
      obs::Counter& counter =
          obs::Registry::global().counter("bench.serve.hammer");
      while (!stop.load(std::memory_order_relaxed)) counter.add();
    });
    constexpr int kRequests = 200;
    const bench::Timer timer;
    for (int i = 0; i < kRequests; ++i) {
      int status = 0;
      std::string body;
      const char* path = i % 2 == 0 ? "/metrics.json" : "/metrics";
      if (!obs::http_get("127.0.0.1", server.port(), path, status, body) ||
          status != 200) {
        std::fprintf(stderr, "FAIL: bench request %d failed\n", i);
        stop.store(true);
        hammer.join();
        return 1;
      }
    }
    const double per_request_ms = timer.seconds() * 1e3 / kRequests;
    stop.store(true);
    hammer.join();
    std::printf("  %-28s %8.3f ms/request (%d requests under load)\n",
                "GET /metrics[.json]", per_request_ms, kRequests);
  }
  return 0;
}
