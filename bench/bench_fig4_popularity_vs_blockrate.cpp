// Regenerates Figure 4: each standard's popularity (log scale) against its
// block rate under AdBlock Plus + Ghostery.
//
// Quadrant anchors from the paper: CSS-OM popular & unblocked (8,193 sites,
// 12.6%); H-CM popular & blocked (~half of sites, 77.4%); ALS unpopular &
// fully blocked (14 sites, 100%); E (Encoding) unpopular & unblocked
// (1 site, 0%).
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 4 — popularity vs block rate", repro);
  std::cout << fu::analysis::render_fig4(repro.analysis());
  return 0;
}
