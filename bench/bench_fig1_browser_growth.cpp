// Regenerates Figure 1: web standards available in the browser over time,
// and million-lines-of-code histories for Chrome/Firefox/Safari/IE —
// including Chrome's mid-2013 drop when the Blink fork removed ~8.8M lines
// of WebKit code. Catalog-only; no crawl needed.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 1 — browser growth over time", repro);
  std::cout << fu::analysis::render_fig1(repro.catalog());
  return 0;
}
