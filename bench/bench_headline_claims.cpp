// Regenerates the paper's headline numbers (§5.3, §7.1, §7.2): how many
// features/standards are never used, used on <1% of sites, blocked >90% of
// the time, and how blocking shifts those counts.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Headline claims — paper vs measured", repro);
  std::cout << fu::analysis::render_headline(repro.analysis());
  return 0;
}
