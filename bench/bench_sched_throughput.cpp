// bench_sched_throughput — scheduler overhead and scaling.
//
// Two questions, answered against the seed's shared-atomic-counter loop
// ("striped", kept in the scheduler as a reference policy):
//
//   1. Raw overhead: how many nanoseconds does the work-stealing pool add
//      per job when the jobs are nearly free?
//   2. Real survey throughput: on a 200-site survey — whose per-site cost
//      has exactly the long tail stealing exists for — is work-stealing at
//      least as fast as striping at every thread count?
//
// Scale the survey with FU_SITES (default 200) and FU_PASSES (default 2).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "sched/worksteal.h"

namespace {

using namespace fu;

double time_policy(std::size_t jobs, const sched::Job& job,
                   sched::SchedulerOptions::Policy policy, int threads) {
  sched::SchedulerOptions options;
  options.threads = threads;
  options.policy = policy;
  const bench::Timer timer;
  const sched::RunReport report = sched::run_jobs(jobs, job, options);
  const double seconds = timer.seconds();
  if (!report.all_ok()) std::fprintf(stderr, "warning: jobs failed\n");
  return seconds;
}

void overhead_microbench() {
  std::printf("-- scheduler overhead (100k near-empty jobs, ns/job) --\n");
  std::printf("%8s %12s %12s\n", "threads", "striped", "stealing");
  constexpr std::size_t kJobs = 100'000;
  std::vector<std::uint64_t> sink(kJobs, 0);
  const sched::Job job = [&](std::size_t i, int) { sink[i] = i * 2654435761u; };
  for (const int threads : {1, 2, 4, 8}) {
    const double striped = time_policy(
        kJobs, job, sched::SchedulerOptions::Policy::kStriped, threads);
    const double stealing = time_policy(
        kJobs, job, sched::SchedulerOptions::Policy::kWorkStealing, threads);
    std::printf("%8d %12.0f %12.0f\n", threads, striped * 1e9 / kJobs,
                stealing * 1e9 / kJobs);
  }
  std::printf("\n");
}

double time_survey(const net::SyntheticWeb& web,
                   crawler::SurveyOptions options,
                   sched::SchedulerOptions::Policy policy, int threads,
                   std::uint64_t& invocations) {
  options.scheduler_policy = policy;
  options.threads = threads;
  const bench::Timer timer;
  const crawler::SurveyResults results = crawler::run_survey(web, options);
  const double seconds = timer.seconds();
  invocations = results.total_invocations();
  if (results.sites_measured() == 0) {
    std::fprintf(stderr, "warning: nothing measured\n");
  }
  return seconds;
}

void survey_bench() {
  ReproductionConfig config = ReproductionConfig::from_env();
  if (std::getenv("FU_SITES") == nullptr) config.sites = 200;
  if (std::getenv("FU_PASSES") == nullptr) config.passes = 2;

  Reproduction repro(config);
  const net::SyntheticWeb& web = repro.web();

  crawler::SurveyOptions options;
  options.passes = config.passes;
  options.seed = config.seed;

  std::printf("-- %d-site survey, %d passes x 4 configs --\n", config.sites,
              config.passes);
  std::printf("%8s %12s %12s %10s %14s\n", "threads", "striped(s)",
              "stealing(s)", "speedup", "stealing inv/s");
  for (const int threads : {1, 2, 4, 8}) {
    std::uint64_t striped_inv = 0, stealing_inv = 0;
    const double striped_s =
        time_survey(web, options, sched::SchedulerOptions::Policy::kStriped,
                    threads, striped_inv);
    const double stealing_s = time_survey(
        web, options, sched::SchedulerOptions::Policy::kWorkStealing, threads,
        stealing_inv);
    if (striped_inv != stealing_inv) {
      std::fprintf(stderr, "warning: policies disagree on invocations!\n");
    }
    std::printf("%8d %12.2f %12.2f %9.2fx %14.0f\n", threads, striped_s,
                stealing_s, striped_s / stealing_s,
                static_cast<double>(stealing_inv) / stealing_s);
  }
}

}  // namespace

int main() {
  std::printf("=== scheduler throughput: work-stealing vs striped ===\n\n");
  overhead_microbench();
  survey_bench();
  return 0;
}
