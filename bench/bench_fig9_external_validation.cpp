// Regenerates Figure 9 (external validation): for ~92 visit-weighted sites,
// how many standards a human-style browsing session observed that five
// automated monkey-testing passes did not.
//
// Paper shape: 83.7% of domains show nothing new; a small tail of outliers
// where manual browsing reached functionality the monkey missed (§6.2).
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 9 — human vs automated coverage", repro);
  std::cout << fu::analysis::render_fig9(repro.external_validation());
  return 0;
}
