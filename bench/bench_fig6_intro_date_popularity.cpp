// Regenerates Figure 6: standard introduction date vs popularity, with
// block-rate bands.
//
// Paper anchors: AJAX (2004) old & extremely popular; H-P (2005) old &
// nearly dead; SLC (2013) new & very popular; V (Vibration) newer & used
// exactly once — no simple relationship between age and use (§5.6).
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 6 — introduction date vs popularity", repro);
  std::cout << fu::analysis::render_fig6(repro.analysis());
  return 0;
}
