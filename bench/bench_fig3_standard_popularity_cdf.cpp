// Regenerates Figure 3: the cumulative distribution of standard popularity.
//
// Paper shape: extremes on both ends — six standards on >90% of sites, 28
// of 75 on <=1%, eleven never used — with a spread of popularity levels in
// between rather than a pure feast-or-famine split.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 3 — CDF of standard popularity", repro);
  std::cout << fu::analysis::render_fig3(repro.analysis());
  return 0;
}
