// Extension experiment (§7.3, the paper's future work): "The closed web
// (i.e. web content and functionality that are only available after logging
// in to a website) likely uses a broader set of features. With the correct
// credentials, the monkey testing approach could be used to evaluate those
// sites."
//
// We give the crawler credentials: a sample of sites is crawled twice, once
// anonymously (the paper's open-web methodology) and once logged in. The
// members areas host application-like functionality (workers, IndexedDB,
// crypto, media capture, service workers, EME, ...), so the authenticated
// crawl should observe more standards per site and surface standards the
// open web never shows — including some of the paper's "never used" set.
#include <set>

#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Extension — crawling the closed web (§7.3)", repro);

  const fu::net::SyntheticWeb& web = repro.web();
  const fu::catalog::Catalog& cat = repro.catalog();
  const int sample =
      std::min<int>(500, static_cast<int>(web.sites().size()));

  fu::crawler::CrawlConfig open_config;
  fu::crawler::CrawlConfig closed_config;
  closed_config.browser.authenticated = true;

  double open_standards = 0, closed_standards = 0;
  int measured = 0, sites_with_members = 0;
  fu::support::DynamicBitset open_union(cat.features().size());
  fu::support::DynamicBitset closed_union(cat.features().size());

  for (int i = 0; i < sample; ++i) {
    const fu::net::SitePlan& site = web.sites()[i];
    if (site.status != fu::net::SiteStatus::kOk) continue;
    sites_with_members += site.has_members_area ? 1 : 0;
    const auto open = fu::crawler::crawl_site(web, open_config, site, 77);
    const auto closed = fu::crawler::crawl_site(web, closed_config, site, 77);
    if (!open.measured) continue;
    ++measured;

    std::set<fu::catalog::StandardId> open_set, closed_set;
    for (std::size_t f = 0; f < open.features.size(); ++f) {
      if (open.features.test(f)) {
        open_set.insert(cat.feature(static_cast<fu::catalog::FeatureId>(f))
                            .standard);
      }
      if (closed.features.test(f)) {
        closed_set.insert(cat.feature(static_cast<fu::catalog::FeatureId>(f))
                              .standard);
      }
    }
    open_standards += static_cast<double>(open_set.size());
    closed_standards += static_cast<double>(closed_set.size());
    open_union |= open.features;
    closed_union |= closed.features;
  }

  std::printf("sites crawled:                 %d (%d with login areas)\n",
              measured, sites_with_members);
  std::printf("avg standards per site, open:  %.1f\n",
              open_standards / measured);
  std::printf("avg standards per site, auth:  %.1f\n",
              closed_standards / measured);
  std::printf("distinct features seen, open:  %zu\n", open_union.count());
  std::printf("distinct features seen, auth:  %zu\n", closed_union.count());

  // Standards the closed web surfaces that the open web never did.
  const fu::support::DynamicBitset fresh = closed_union.minus(open_union);
  std::set<std::string> fresh_standards;
  for (std::size_t f = 0; f < fresh.size(); ++f) {
    if (fresh.test(f)) {
      fresh_standards.insert(
          cat.standard(
                 cat.feature(static_cast<fu::catalog::FeatureId>(f)).standard)
              .abbreviation);
    }
  }
  std::printf("standards only behind logins:  ");
  for (const std::string& abbrev : fresh_standards) {
    std::printf("%s ", abbrev.c_str());
  }
  std::printf("\n\nshape check: the authenticated crawl sees strictly more, "
              "confirming the paper's\nhypothesis that the closed web uses a "
              "broader feature set.\n");
  return 0;
}
