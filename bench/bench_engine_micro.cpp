// Micro-benchmarks (google-benchmark) for the substrate, including the
// ablation DESIGN.md calls out: the cost of measuring by prototype shimming
// — every instrumented call pays one extra native frame and one counter
// bump — versus running uninstrumented.
#include <benchmark/benchmark.h>

#include "blocker/extensions.h"
#include "browser/session.h"
#include "catalog/catalog.h"
#include "core/featureusage.h"
#include "dom/html.h"
#include "net/web.h"
#include "script/interp.h"
#include "script/parser.h"
#include "webidl/parser.h"

namespace {

const fu::catalog::Catalog& catalog() {
  static const fu::catalog::Catalog kCatalog;
  return kCatalog;
}

const fu::net::SyntheticWeb& web() {
  static const fu::net::SyntheticWeb kWeb = [] {
    fu::net::SyntheticWeb::Config config;
    config.site_count = 100;
    return fu::net::SyntheticWeb(catalog(), config);
  }();
  return kWeb;
}

// ------------------------------------------------------------ script VM --

void BM_ScriptParse(benchmark::State& state) {
  const std::string source = web().fetch(
      *fu::net::Url::parse("http://" + web().sites()[0].domain +
                           "/js/app0.js"))->body;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fu::script::parse_program(source));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_ScriptParse);

void BM_ScriptExecuteArithmeticLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto program = fu::script::parse_program(
      "var acc = 0;"
      "for (var i = 0; i < 1000; i = i + 1) { acc = acc + i * 2 - 1; }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_ScriptExecuteArithmeticLoop);

void BM_ScriptFunctionCalls(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "function f(a, b) { return a + b; }");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "var r = 0; for (var i = 0; i < 200; i = i + 1) { r = f(r, 1); }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 200);
}
BENCHMARK(BM_ScriptFunctionCalls);

// Call-site inline caches: the dispatch cost of one warm monomorphic call
// site (the common case — almost every call site on the synthetic web only
// ever sees one callee), and the repathing cost when a site's callee keeps
// changing and every call misses.

void BM_CallSiteIC_MonomorphicCalls(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "function nop() { return 0; }");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "for (var i = 0; i < 500; i = i + 1) { nop(); }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_CallSiteIC_MonomorphicCalls);

void BM_CallSiteIC_RepathingCalls(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "function a() { return 0; } function b() { return 1; }");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "for (var i = 0; i < 500; i = i + 1) {"
      "  (i % 2 == 0 ? a : b)();"
      "}");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_CallSiteIC_RepathingCalls);

// The atom/inline-cache targets: repeated property reads and writes on the
// same receiver, identifier-heavy arithmetic, element access through index
// expressions, and method lookup through the prototype chain. These are the
// loops the measuring extension's shims sit inside on every page visit.

void BM_PropertyReadLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "var o = { alpha: 1, beta: 2, gamma: 3, delta: 4, epsilon: 5 };");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "var acc = 0;"
      "for (var i = 0; i < 500; i = i + 1) {"
      "  acc = acc + o.alpha + o.beta + o.gamma + o.delta + o.epsilon;"
      "}");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2500);
}
BENCHMARK(BM_PropertyReadLoop);

void BM_PropertyWriteLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "var o = { x: 0, y: 0 };");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "for (var i = 0; i < 500; i = i + 1) { o.x = i; o.y = o.x + 1; }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_PropertyWriteLoop);

void BM_IdentifierHeavyLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "var a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "var acc = 0;"
      "for (var i = 0; i < 500; i = i + 1) {"
      "  acc = acc + a + b + c + d + e + f - a - b - c;"
      "}");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 500);
}
BENCHMARK(BM_IdentifierHeavyLoop);

void BM_ArrayElementLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "var arr = [];"
      "for (var i = 0; i < 64; i = i + 1) { arr.push(i); }");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "var acc = 0;"
      "for (var j = 0; j < 10; j = j + 1) {"
      "  for (var i = 0; i < 64; i = i + 1) { acc = acc + arr[i]; }"
      "}");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 640);
}
BENCHMARK(BM_ArrayElementLoop);

void BM_PrototypeMethodLookupLoop(benchmark::State& state) {
  fu::script::Interpreter interp;
  const auto setup = fu::script::parse_program(
      "function Widget() { return undefined; }"
      "Widget.prototype.poke = function () { return 1; };"
      "var w = new Widget();");
  interp.execute(setup);
  const auto program = fu::script::parse_program(
      "var acc = 0;"
      "for (var i = 0; i < 300; i = i + 1) { acc = acc + w.poke(); }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 300);
}
BENCHMARK(BM_PrototypeMethodLookupLoop);

// -------------------------------------------- instrumentation ablation ---

void BM_MethodCall_Uninstrumented(benchmark::State& state) {
  fu::script::Interpreter interp;
  fu::browser::DomBindings bindings(interp, catalog());
  const auto program = fu::script::parse_program(
      "var x = new XMLHttpRequest();"
      "for (var i = 0; i < 100; i = i + 1) { x.open(\"GET\", \"/\"); }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_MethodCall_Uninstrumented);

void BM_MethodCall_Instrumented(benchmark::State& state) {
  fu::script::Interpreter interp;
  fu::browser::UsageRecorder recorder(catalog().features().size());
  fu::browser::DomBindings bindings(interp, catalog());
  fu::browser::MeasuringExtension extension(catalog(), recorder);
  extension.inject(interp, bindings);
  const auto program = fu::script::parse_program(
      "var x = new XMLHttpRequest();"
      "for (var i = 0; i < 100; i = i + 1) { x.open(\"GET\", \"/\"); }");
  for (auto _ : state) interp.execute(program);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_MethodCall_Instrumented);

void BM_ExtensionInjection(benchmark::State& state) {
  for (auto _ : state) {
    fu::script::Interpreter interp;
    fu::browser::UsageRecorder recorder(catalog().features().size());
    fu::browser::DomBindings bindings(interp, catalog());
    fu::browser::MeasuringExtension extension(catalog(), recorder);
    extension.inject(interp, bindings);
    benchmark::DoNotOptimize(extension.methods_shimmed());
  }
}
BENCHMARK(BM_ExtensionInjection);

// Full BrowserSession construction, the per-(site × config × pass) cost a
// survey pays thousands of times: snapshot:0 rebuilds the environment from
// the catalog every time, snapshot:1 clones the per-catalog frozen image
// (the production default). The image build itself happens once per process
// and is excluded by the warm-up construction.
void BM_SessionSetup(benchmark::State& state) {
  fu::browser::set_session_snapshots_enabled(state.range(0) != 0);
  {
    fu::browser::BrowserSession warm(web(), fu::browser::BrowserConfig(), 1);
    benchmark::DoNotOptimize(warm.cloned_from_snapshot());
  }
  for (auto _ : state) {
    fu::browser::BrowserSession session(web(), fu::browser::BrowserConfig(),
                                        1);
    benchmark::DoNotOptimize(session.extension().methods_shimmed());
  }
  fu::browser::set_session_snapshots_enabled(true);
}
BENCHMARK(BM_SessionSetup)->ArgName("snapshot")->Arg(0)->Arg(1);

// -------------------------------------------------------------- parsers --

void BM_HtmlParse(benchmark::State& state) {
  const std::string html =
      web().fetch(web().home_url(web().sites()[0]))->body;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fu::dom::parse_html(html));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(html.size()));
}
BENCHMARK(BM_HtmlParse);

void BM_WebIdlParseCorpus(benchmark::State& state) {
  const auto& corpus = catalog().webidl_corpus();
  for (auto _ : state) {
    for (const std::string& doc : corpus) {
      benchmark::DoNotOptimize(fu::webidl::parse(doc));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_WebIdlParseCorpus);

// -------------------------------------------------------------- blocker --

void BM_FilterListMatch(benchmark::State& state) {
  const auto blocker = fu::blocker::make_ad_blocker(web());
  const fu::net::Url blocked = *fu::net::Url::parse(
      "http://" + web().ad_hosts()[0] + "/adtag/tag.js?site=x&p=0");
  const fu::net::Url clean =
      *fu::net::Url::parse("http://site00001.net/js/app0.js");
  fu::blocker::RequestContext ctx;
  ctx.page_domain = "site00001.net";
  ctx.third_party = true;
  ctx.type = fu::blocker::ResourceType::kScript;
  for (auto _ : state) {
    benchmark::DoNotOptimize(blocker->should_block(blocked, ctx));
    benchmark::DoNotOptimize(blocker->should_block(clean, ctx));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2);
}
BENCHMARK(BM_FilterListMatch);

// ------------------------------------------------------------ pipeline ---

void BM_PageLoad(benchmark::State& state) {
  fu::browser::SiteCache cache;
  fu::browser::BrowserConfig config;
  config.cache = &cache;
  fu::browser::BrowserSession session(web(), config, 1);
  const fu::net::Url home = web().home_url(web().sites()[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.load_page(home));
  }
}
BENCHMARK(BM_PageLoad);

void BM_FullSiteCrawlPass(benchmark::State& state) {
  fu::crawler::CrawlConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fu::crawler::crawl_site(web(), config, web().sites()[0],
                                static_cast<std::uint64_t>(state.iterations())));
  }
}
BENCHMARK(BM_FullSiteCrawlPass);

void BM_SyntheticWebGeneration(benchmark::State& state) {
  for (auto _ : state) {
    fu::net::SyntheticWeb::Config config;
    config.site_count = static_cast<int>(state.range(0));
    fu::net::SyntheticWeb generated(catalog(), config);
    benchmark::DoNotOptimize(generated.sites().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SyntheticWebGeneration)->Arg(100)->Arg(1000);

void BM_ZipfSampling(benchmark::State& state) {
  fu::support::Zipf zipf(10000, 0.95);
  fu::support::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSampling);

}  // namespace

BENCHMARK_MAIN();
