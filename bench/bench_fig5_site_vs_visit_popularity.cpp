// Regenerates Figure 5: portion of sites vs portion of Alexa-weighted
// visits using each standard.
//
// Paper shape: standards cluster around the x=y line, with DOM4, DOM-PS,
// H-HI and TC sitting visibly above it (more popular on high-traffic
// sites) — close enough to the diagonal that the paper proceeds unweighted.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 5 — sites vs visits per standard", repro);
  std::cout << fu::analysis::render_fig5(repro.analysis());
  return 0;
}
