// Extension experiment (§7.2): the paper observes that unused and heavily
// blocked features contradict least privilege — "unpopular and heavily
// blocked features have imposed substantial security costs to the browser."
// This bench quantifies the debloating opportunity that observation implies
// (and that follow-up work later pursued): for increasingly aggressive
// usage thresholds, disable every standard below the threshold and report
// how many CVEs' worth of attack surface disappears versus how many sites
// would lose at least one standard they actually use.
#include <algorithm>

#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Extension — browser debloating cost/benefit (§7.2)",
                    repro);
  const fu::analysis::Analysis& an = repro.analysis();
  const fu::catalog::Catalog& cat = repro.catalog();
  const int measured = an.measured_sites();

  int total_cves = 0;
  for (std::size_t s = 0; s < cat.standard_count(); ++s) {
    total_cves += cat.cve_count(static_cast<fu::catalog::StandardId>(s));
  }

  std::printf("%-22s %10s %12s %14s %16s\n", "usage threshold",
              "standards", "CVEs removed", "features gone",
              "sites affected");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (const double threshold : {0.0, 0.001, 0.01, 0.05, 0.10, 0.25}) {
    int standards_removed = 0;
    int cves_removed = 0;
    int features_removed = 0;
    // A site is affected if it uses >=1 removed standard.
    std::vector<bool> affected(repro.survey().sites.size(), false);

    for (std::size_t s = 0; s < cat.standard_count(); ++s) {
      const auto sid = static_cast<fu::catalog::StandardId>(s);
      const int sites = an.standard_sites(
          sid, fu::analysis::BrowsingConfig::kDefault);
      if (static_cast<double>(sites) > threshold * measured) continue;
      ++standards_removed;
      cves_removed += cat.cve_count(sid);
      features_removed += cat.standard(sid).feature_count;
      for (std::size_t i = 0; i < repro.survey().sites.size(); ++i) {
        const auto& bits = repro.survey().site_features(
            i, fu::crawler::BrowsingConfig::kDefault);
        for (const fu::catalog::FeatureId fid : cat.features_of(sid)) {
          if (bits.test(fid)) {
            affected[i] = true;
            break;
          }
        }
        // (cheap enough at survey scale; one standard's features only)
      }
    }
    const auto sites_affected = static_cast<int>(
        std::count(affected.begin(), affected.end(), true));
    std::printf("use <= %5.1f%% of sites %10d %7d/%-4d %14d %11d (%.2f%%)\n",
                threshold * 100, standards_removed, cves_removed, total_cves,
                features_removed, sites_affected,
                100.0 * sites_affected / std::max(1, measured));
  }

  std::printf(
      "\nreading: disabling only the never-used standards already removes "
      "attack\nsurface at zero breakage; the <=1%% tier trades a large CVE "
      "reduction for\naffecting a small fraction of sites — the paper's "
      "least-privilege argument.\n");
  return 0;
}
