// Regenerates Figure 7: per-standard block rates with only AdBlock Plus
// installed vs only Ghostery installed.
//
// Paper shape: WRTC, WCR and PT2 well above the diagonal (tracker-blocked),
// UIE below it (ad-blocked); most standards near the line.
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 7 — ad-only vs tracking-only block rates", repro);
  if (!repro.survey().has_ad_only || !repro.survey().has_tracking_only) {
    std::cout << "single-blocker configurations disabled (FU_FIG7=0); "
                 "nothing to plot\n";
    return 0;
  }
  std::cout << fu::analysis::render_fig7(repro.analysis());
  return 0;
}
