// Ablation (DESIGN.md decision 2): how much does the elicitation strategy
// matter? The paper argues monkey testing approximates human browsing
// (§6.2); this bench compares three strategies on the same sites:
//   load-only   fetch the page, run scripts, never interact
//   monkey      the paper's strategy (random clicks/scrolls/input, BFS 13p)
//   human       the §6.2 casual-reader model (3 pages, prominent links)
#include <set>

#include "bench_common.h"

namespace {

struct Coverage {
  double avg_standards = 0;
  std::size_t distinct_features = 0;
  double avg_pages = 0;
};

Coverage measure(const fu::net::SyntheticWeb& web,
                 const fu::catalog::Catalog& cat, int sample, int mode) {
  Coverage cov;
  fu::support::DynamicBitset all(cat.features().size());
  int measured = 0;
  for (int i = 0; i < sample; ++i) {
    const fu::net::SitePlan& site = web.sites()[i];
    if (site.status != fu::net::SiteStatus::kOk) continue;

    fu::crawler::CrawlConfig config;
    fu::crawler::SiteVisit visit;
    switch (mode) {
      case 0: {  // load-only: zero interaction budget, no navigation
        config.monkey.actions = 0;
        config.fanout = 0;
        config.levels = 0;
        visit = fu::crawler::crawl_site(web, config, site, 31);
        break;
      }
      case 1:
        visit = fu::crawler::crawl_site(web, config, site, 31);
        break;
      default:
        visit = fu::crawler::human_visit(web, config, site, 31);
        break;
    }
    if (!visit.measured) continue;
    ++measured;
    cov.avg_pages += visit.pages_visited;

    std::set<fu::catalog::StandardId> standards;
    for (std::size_t f = 0; f < visit.features.size(); ++f) {
      if (visit.features.test(f)) {
        standards.insert(
            cat.feature(static_cast<fu::catalog::FeatureId>(f)).standard);
      }
    }
    cov.avg_standards += static_cast<double>(standards.size());
    all |= visit.features;
  }
  if (measured > 0) {
    cov.avg_standards /= measured;
    cov.avg_pages /= measured;
  }
  cov.distinct_features = all.count();
  return cov;
}

}  // namespace

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Ablation — elicitation strategy", repro);
  const auto& web = repro.web();
  const auto& cat = repro.catalog();
  const int sample = std::min<int>(400, static_cast<int>(web.sites().size()));

  std::printf("%-12s %16s %18s %10s\n", "strategy", "avg standards",
              "distinct features", "avg pages");
  std::printf("%s\n", std::string(60, '-').c_str());
  const char* names[] = {"load-only", "monkey", "human"};
  for (int mode = 0; mode < 3; ++mode) {
    const Coverage cov = measure(web, cat, sample, mode);
    std::printf("%-12s %16.1f %18zu %10.1f\n", names[mode], cov.avg_standards,
                cov.distinct_features, cov.avg_pages);
  }
  std::printf(
      "\nshape check: monkey > human > load-only — interaction and breadth "
      "both\nmatter, and the monkey's 13-page random walk beats a human's "
      "3-page read,\nwhich is why §6.2 finds manual browsing adds almost "
      "nothing.\n");
  return 0;
}
