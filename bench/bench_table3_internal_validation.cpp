// Regenerates Table 3 (internal validation): the average number of new
// standards discovered by each additional measurement round.
//
// Paper: round 2 -> 1.56, round 3 -> 0.40, round 4 -> 0.29, round 5 -> 0.00.
// The shape to check is the monotone decay toward ~zero by round 5, which
// justifies stopping at five passes (§6.1).
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Table 3 — new standards per crawl round", repro);
  std::cout << fu::analysis::render_table3(repro.survey());
  std::cout << "\npaper: 1.56 / 0.40 / 0.29 / 0.00 for rounds 2-5\n";
  return 0;
}
