// Regenerates Figure 8: the probability density of the number of standards
// a site uses.
//
// Paper shape: most sites use between 14 and 32 of the 74 standards, no
// site exceeds 41, and a small second mode at zero marks the sites with
// little to no JavaScript (§5.9).
#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Figure 8 — site complexity distribution", repro);
  std::cout << fu::analysis::render_fig8(repro.analysis());
  return 0;
}
