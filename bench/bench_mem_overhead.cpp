// bench_mem_overhead — what does always-on domain accounting cost?
//
// Three answers, mirroring bench_prof_overhead:
//
//   1. The accounting pair itself: mem::add() + mem::sub() with no profiler
//      live must cost about one relaxed fetch_add each (the high-water CAS
//      only fires on a fresh peak, and the profiling branch is a relaxed
//      load). This bench *asserts* the bound (generously, 150 ns per
//      add+sub pair) so a regression that sneaks a lock, a sample, or a
//      seq_cst fence onto the disabled path fails the bench job, not a
//      production crawl later.
//   2. The same pair with a MemProfiler live at the default period, in
//      ns/pair — the price of byte attribution while profiling.
//   3. The real question: wall-clock of a survey with accounting alone
//      (always on) vs under the allocation profiler, with a check that both
//      runs measure identical invocation counts (the bit-identity claim,
//      cross-checked on exact bytes by engine_identity_test).
//
// Scale the survey with FU_SITES (default 100) and FU_PASSES (default 2).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "obs/mem.h"

namespace {

using namespace fu;

// Keep the optimizer from deleting the measured loops.
volatile std::uint64_t g_sink = 0;

double baseline_ns(std::size_t iters) {
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    g_sink = g_sink + 1;
  }
  return timer.seconds() * 1e9 / static_cast<double>(iters);
}

double add_sub_ns(std::size_t iters) {
  // Warm the high-water mark first so the measured loop never takes the
  // CAS — this is the steady-state cost the bound is about.
  obs::mem::add(obs::mem::Domain::kSched, 64);
  const bench::Timer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    obs::mem::add(obs::mem::Domain::kSched, 64);
    obs::mem::sub(obs::mem::Domain::kSched, 64);
    g_sink = g_sink + 1;
  }
  const double ns = timer.seconds() * 1e9 / static_cast<double>(iters);
  obs::mem::sub(obs::mem::Domain::kSched, 64);
  return ns;
}

double profiled_add_sub_ns(std::size_t iters) {
  obs::mem::MemProfiler profiler;  // default period
  profiler.start();
  const double ns = add_sub_ns(iters);
  profiler.stop();
  return ns;
}

double time_survey(const net::SyntheticWeb& web,
                   const crawler::SurveyOptions& options,
                   std::uint64_t& invocations) {
  const bench::Timer timer;
  const crawler::SurveyResults results = crawler::run_survey(web, options);
  invocations = results.total_invocations();
  return timer.seconds();
}

}  // namespace

int main() {
  std::printf("=== memory-accounting overhead ===\n\n");

  constexpr std::size_t kIters = 2'000'000;
  const double base = baseline_ns(kIters);
  const double plain = add_sub_ns(kIters);
  const double profiled = profiled_add_sub_ns(1'000'000);
  std::printf("-- hot-path microcosts (ns/add+sub pair, %zuk iters) --\n",
              kIters / 1000);
  std::printf("  %-28s %8.2f\n", "baseline (sink store)", base);
  std::printf("  %-28s %8.2f\n", "add+sub, profiler off", plain);
  std::printf("  %-28s %8.2f\n", "add+sub, profiler on", profiled);

  // The contract this bench exists to enforce: accounting with no profiler
  // live is within noise of two relaxed atomic RMWs.
  const double pair_cost = plain - base;
  if (pair_cost > 150.0) {
    std::fprintf(stderr,
                 "FAIL: accounting add+sub pair costs %.1f ns over baseline "
                 "(budget 150 ns) — something heavy crept onto the "
                 "always-on path\n",
                 pair_cost);
    return 1;
  }
  std::printf("  add+sub overhead %.2f ns: within budget (150 ns)\n\n",
              pair_cost);

  // Whole-survey cost: accounting alone vs the allocation profiler at the
  // default sample period.
  ReproductionConfig config = ReproductionConfig::from_env();
  if (std::getenv("FU_SITES") == nullptr) config.sites = 100;
  if (std::getenv("FU_PASSES") == nullptr) config.passes = 2;
  Reproduction repro(config);
  const net::SyntheticWeb& web = repro.web();

  crawler::SurveyOptions options;
  options.passes = config.passes;
  options.seed = config.seed;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.threads = 4;

  std::printf("-- %d-site survey, %d passes, 4 threads --\n", config.sites,
              config.passes);
  std::uint64_t plain_inv = 0, profiled_inv = 0;
  const double plain_s = time_survey(web, options, plain_inv);

  obs::mem::MemProfiler profiler;
  profiler.start();
  const double profiled_s = time_survey(web, options, profiled_inv);
  const obs::FoldedProfile profile = profiler.stop();

  std::printf("  %-28s %8.2f s\n", "accounting only", plain_s);
  std::printf("  %-28s %8.2f s  (%s sampled, %+.1f%%)\n", "mem profiler on",
              profiled_s, obs::mem::format_bytes(
                              static_cast<std::int64_t>(profile.total()))
                              .c_str(),
              (profiled_s / plain_s - 1.0) * 100.0);
  if (plain_inv != profiled_inv) {
    std::fprintf(stderr,
                 "FAIL: allocation profiling changed the survey "
                 "(invocations %llu vs %llu)\n",
                 static_cast<unsigned long long>(plain_inv),
                 static_cast<unsigned long long>(profiled_inv));
    return 1;
  }
  std::printf("  results identical with the profiler on\n");

  std::printf("\n-- per-domain peaks after the profiled survey --\n");
  for (std::size_t d = 0; d < obs::mem::kDomainCount; ++d) {
    const auto domain = static_cast<obs::mem::Domain>(d);
    std::printf("  %-16s %12s\n", obs::mem::domain_name(domain),
                obs::mem::format_bytes(obs::mem::high_water_bytes(domain))
                    .c_str());
  }
  return 0;
}
