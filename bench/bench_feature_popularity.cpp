// Feature-level popularity (§5.3): the paper's headline examples —
// Document.prototype.createElement on 9,079 sites (>90%),
// XMLHttpRequest.prototype.open on 7,955, Document.prototype.querySelectorAll
// on >80%, PluginArray.prototype.refresh on 90 sites (<1%),
// Navigator.prototype.vibrate on exactly 1 — plus the full top-20.
#include <algorithm>

#include "bench_common.h"

int main() {
  fu::Reproduction repro = fu::bench::make_reproduction();
  fu::bench::banner("Feature popularity — the §5.3 anchors", repro);
  const fu::analysis::Analysis& an = repro.analysis();
  const fu::catalog::Catalog& cat = repro.catalog();

  struct Anchor {
    const char* feature;
    int paper_sites;
  };
  const Anchor anchors[] = {
      {"Document.prototype.createElement", 9079},
      {"XMLHttpRequest.prototype.open", 7955},
      {"Document.prototype.querySelectorAll", 8100},  // ">80% of websites"
      {"PluginArray.prototype.refresh", 90},
      {"Navigator.prototype.vibrate", 1},
  };
  std::printf("%-44s %8s %8s\n", "feature", "paper", "ours");
  std::printf("%s\n", std::string(64, '-').c_str());
  for (const Anchor& anchor : anchors) {
    const fu::catalog::Feature* f = cat.find_feature(anchor.feature);
    if (f == nullptr) continue;
    std::printf("%-44s %8d %8d\n", anchor.feature, anchor.paper_sites,
                an.feature_sites(f->id,
                                 fu::analysis::BrowsingConfig::kDefault));
  }

  // Top 20 features by measured popularity.
  std::vector<std::pair<int, fu::catalog::FeatureId>> ranked;
  for (const fu::catalog::Feature& f : cat.features()) {
    ranked.emplace_back(
        an.feature_sites(f.id, fu::analysis::BrowsingConfig::kDefault), f.id);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\ntop 20 features on the measured web:\n");
  for (int i = 0; i < 20; ++i) {
    const fu::catalog::Feature& f = cat.feature(ranked[static_cast<std::size_t>(i)].second);
    std::printf("  %2d. %-46s %6d sites [%s]\n", i + 1, f.full_name.c_str(),
                ranked[static_cast<std::size_t>(i)].first,
                cat.standard(f.standard).abbreviation.c_str());
  }
  return 0;
}
