// src/obs contract: lock-free metrics merge correctly across threads,
// spans nest and stay matched through every renderer, ring overflow drops
// whole spans (never half of one), and tracing a survey changes nothing
// about its results.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/tracefile.h"
#include "test_util.h"

namespace fu::obs {
namespace {

// -------------------------------------------------------------- metrics --

TEST(Metrics, CounterMergesAcrossThreads) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(Metrics, CounterAddsArbitraryIncrements) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  counter.add(5);
  counter.add(37);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, RegistryFindsOrCreatesStableHandles) {
  Registry registry;
  Counter& a = registry.counter("same.name");
  Counter& b = registry.counter("same.name");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&registry.counter("other.name"), &a);
  // The global registry is a process-wide singleton.
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(Metrics, GaugeTracksValueAndMax) {
  Registry registry;
  Gauge& gauge = registry.gauge("test.gauge");
  gauge.set(10);
  gauge.set(3);
  EXPECT_EQ(gauge.value(), 3);
  EXPECT_EQ(gauge.max(), 10);
  gauge.record_max(50);
  EXPECT_EQ(gauge.value(), 3);  // record_max leaves the last-set value alone
  EXPECT_EQ(gauge.max(), 50);
  gauge.record_max(7);
  EXPECT_EQ(gauge.max(), 50);
}

TEST(Metrics, HistogramBucketBoundariesAreUpperInclusive) {
  Registry registry;
  Histogram& hist = registry.histogram("test.hist", {10, 100, 1000});
  EXPECT_EQ(hist.bucket_for(0), 0u);
  EXPECT_EQ(hist.bucket_for(10), 0u);    // on the edge: lower bucket
  EXPECT_EQ(hist.bucket_for(11), 1u);
  EXPECT_EQ(hist.bucket_for(100), 1u);
  EXPECT_EQ(hist.bucket_for(101), 2u);
  EXPECT_EQ(hist.bucket_for(1000), 2u);
  EXPECT_EQ(hist.bucket_for(1001), 3u);  // overflow bucket
  EXPECT_EQ(hist.bucket_for(~std::uint64_t{0}), 3u);
}

TEST(Metrics, HistogramSnapshotCountsSumsAndExtremes) {
  Registry registry;
  Histogram& hist = registry.histogram("test.hist", {10, 100, 1000});
  for (const std::uint64_t v : {5u, 50u, 500u, 5000u}) hist.record(v);
  const Histogram::Snapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5555u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 5000u);
}

TEST(Metrics, HistogramPercentilesAreClampedAndMonotonic) {
  Registry registry;
  Histogram& hist = registry.histogram("test.hist", default_latency_bounds_us());
  for (std::uint64_t v = 1; v <= 1000; ++v) hist.record(v);
  const Histogram::Snapshot snap = hist.snapshot();
  const double p50 = snap.percentile(50);
  const double p95 = snap.percentile(95);
  const double p99 = snap.percentile(99);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p50 of uniform 1..1000 should land in the right region even with
  // power-of-two buckets (the bucket holding rank 500 spans 257..512).
  EXPECT_GE(p50, 257.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_EQ(snap.percentile(0), 1.0);
  EXPECT_EQ(snap.percentile(100), 1000.0);
}

TEST(Metrics, HistogramMergesAcrossThreads) {
  Registry registry;
  Histogram& hist = registry.histogram("test.hist", {100});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&hist] {
      for (int i = 0; i < 1000; ++i) hist.record(50);
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 4000u);
  EXPECT_EQ(snap.counts[0], 4000u);
  EXPECT_EQ(snap.sum, 200000u);
}

TEST(Metrics, ExponentialBounds) {
  const std::vector<std::uint64_t> bounds = exponential_bounds(1, 2.0, 8);
  const std::vector<std::uint64_t> expected = {1, 2, 4, 8, 16, 32, 64, 128};
  EXPECT_EQ(bounds, expected);
}

TEST(Metrics, SnapshotRendersValidJson) {
  Registry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(-7);
  registry.histogram("c.hist", {10, 100}).record(42);
  const std::string json = registry.snapshot().to_json();

  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(json, root, &error)) << error << "\n" << json;
  const JsonValue* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("a.count", -1), 3.0);
  const JsonValue* gauges = root.find("gauges");
  ASSERT_NE(gauges, nullptr);
  const JsonValue* histograms = root.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->find("c.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->number_or("count", -1), 1.0);
}

TEST(Metrics, HistogramJsonHasExplicitOverflowBoundAndRoundTrips) {
  Registry registry;
  Histogram& hist = registry.histogram("h", {10, 100});
  hist.record(5);
  hist.record(50);
  hist.record(5000);  // overflow

  JsonValue root;
  std::string error;
  ASSERT_TRUE(json_parse(registry.snapshot().to_json(), root, &error))
      << error;
  const JsonValue* obj = root.find("histograms")->find("h");
  ASSERT_NE(obj, nullptr);

  // bounds ends in the string "+inf", making it the same length as counts —
  // the overflow bucket is self-describing.
  const JsonValue* bounds = obj->find("bounds");
  const JsonValue* counts = obj->find("counts");
  ASSERT_NE(bounds, nullptr);
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(bounds->array.size(), 3u);
  ASSERT_EQ(counts->array.size(), 3u);
  EXPECT_TRUE(bounds->array[2].is_string());
  EXPECT_EQ(bounds->array[2].string, "+inf");

  Histogram::Snapshot parsed;
  ASSERT_TRUE(histogram_from_json(*obj, parsed));
  EXPECT_EQ(parsed.count, 3u);
  EXPECT_EQ(parsed.sum, 5055u);
  const std::vector<std::uint64_t> expected_bounds = {10, 100};
  const std::vector<std::uint64_t> expected_counts = {1, 1, 1};
  EXPECT_EQ(parsed.bounds, expected_bounds);
  EXPECT_EQ(parsed.counts, expected_counts);
  EXPECT_EQ(parsed.min, 5u);
  EXPECT_EQ(parsed.max, 5000u);
}

TEST(Metrics, HistogramFromJsonAcceptsImplicitOverflowForm) {
  // The pre-"+inf" emitter wrote one fewer bound than counts; old baseline
  // files must keep loading.
  JsonValue obj;
  ASSERT_TRUE(json_parse(
      R"({"bounds": [10, 100], "counts": [1, 2, 3], "count": 6,
          "sum": 60, "min": 1, "max": 500})",
      obj));
  Histogram::Snapshot parsed;
  ASSERT_TRUE(histogram_from_json(obj, parsed));
  const std::vector<std::uint64_t> expected_bounds = {10, 100};
  const std::vector<std::uint64_t> expected_counts = {1, 2, 3};
  EXPECT_EQ(parsed.bounds, expected_bounds);
  EXPECT_EQ(parsed.counts, expected_counts);
  EXPECT_EQ(parsed.count, 6u);
}

TEST(Metrics, HistogramFromJsonRejectsNonHistograms) {
  Histogram::Snapshot parsed;
  JsonValue obj;
  ASSERT_TRUE(json_parse(R"({"bounds": [10], "counts": [1, 2, 3]})", obj));
  EXPECT_FALSE(histogram_from_json(obj, parsed));  // size mismatch
  ASSERT_TRUE(json_parse(R"({"bounds": ["+inf", 10], "counts": [1, 2]})",
                         obj));
  EXPECT_FALSE(histogram_from_json(obj, parsed));  // "+inf" not terminal
  ASSERT_TRUE(json_parse(R"({"count": 3})", obj));
  EXPECT_FALSE(histogram_from_json(obj, parsed));  // no counts at all
}

TEST(Metrics, PrometheusExpositionIsWellFormed) {
  Registry registry;
  registry.counter("sites.done").add(7);
  registry.gauge("sched.deque-depth").set(4);
  Histogram& hist = registry.histogram("visit.us", {10, 100});
  hist.record(50);
  hist.record(5000);
  const std::string text = registry.snapshot().to_prometheus();

  // Names sanitized to [a-zA-Z0-9_] under a fu_ prefix; counters get _total.
  EXPECT_NE(text.find("# TYPE fu_sites_done_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fu_sites_done_total 7"), std::string::npos);
  EXPECT_NE(text.find("fu_sched_deque_depth 4"), std::string::npos);
  // Histogram buckets are cumulative and end at le="+Inf" == count.
  EXPECT_NE(text.find("fu_visit_us_bucket{le=\"100\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("fu_visit_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("fu_visit_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("fu_visit_us_sum 5050"), std::string::npos);
}

// ----------------------------------------------------------------- json --

TEST(Json, ParsesScalarsAndContainers) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"a": [1, 2.5, -3], "b": {"c": true},
                             "d": null, "e": "x"})",
                         v));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -3.0);
  EXPECT_TRUE(v.find("b")->find("c")->boolean);
  EXPECT_EQ(v.string_or("e", ""), "x");
}

TEST(Json, DecodesStringEscapes) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"s": "a\"b\\c\ndA"})", v));
  EXPECT_EQ(v.string_or("s", ""), "a\"b\\c\ndA");
}

TEST(Json, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{", v, &error));
  EXPECT_FALSE(json_parse("{\"a\": 1} trailing", v, &error));
  EXPECT_FALSE(json_parse("\"unterminated", v, &error));
  EXPECT_FALSE(json_parse("", v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, ParsesEmptyContainers) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"({"o": {}, "a": [], "n": [[], {}]})", v));
  EXPECT_TRUE(v.find("o")->is_object());
  EXPECT_TRUE(v.find("o")->object.empty());
  EXPECT_TRUE(v.find("a")->is_array());
  EXPECT_TRUE(v.find("a")->array.empty());
  ASSERT_EQ(v.find("n")->array.size(), 2u);
}

TEST(Json, ParsesExponentNumbers) {
  JsonValue v;
  ASSERT_TRUE(json_parse(R"([1e3, 2.5E-2, -1.25e+2, 0.0])", v));
  ASSERT_EQ(v.array.size(), 4u);
  EXPECT_DOUBLE_EQ(v.array[0].number, 1000.0);
  EXPECT_DOUBLE_EQ(v.array[1].number, 0.025);
  EXPECT_DOUBLE_EQ(v.array[2].number, -125.0);
  EXPECT_DOUBLE_EQ(v.array[3].number, 0.0);
}

TEST(Json, EscapedQuotesAndBackslashesRoundTripThroughQuote) {
  const std::string nasty = "a\"b\\c\n\t\x01z";
  const std::string quoted = json_quote(nasty);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse("{\"k\": " + quoted + "}", v, &error)) << error;
  EXPECT_EQ(v.string_or("k", ""), nasty);
}

TEST(Json, RejectsTruncatedInput) {
  // Every prefix of a valid document must fail cleanly, not crash or accept.
  const std::string doc =
      R"({"a": [1, 2.5], "s": "x\n", "b": true, "n": null})";
  JsonValue v;
  for (std::size_t len = 0; len < doc.size(); ++len) {
    EXPECT_FALSE(json_parse(doc.substr(0, len), v))
        << "accepted truncation at " << len;
  }
  EXPECT_TRUE(json_parse(doc, v));
}

// ---------------------------------------------------------------- trace --

TEST(Trace, DisabledTracingIsANoop) {
  ASSERT_FALSE(tracing_enabled());
  TraceSpan span("never-recorded", std::string("arg"));
  trace_instant("also-never");
  // Nothing to assert beyond "did not crash": with no tracer installed the
  // span must not allocate or record anywhere.
  EXPECT_FALSE(tracing_enabled());
}

TEST(Trace, SpansNestAndArriveInProgramOrder) {
  Tracer tracer;
  tracer.start();
  EXPECT_TRUE(tracing_enabled());
  {
    TraceSpan outer("site-visit", std::string("example.com"));
    { TraceSpan inner("fetch"); }
    { TraceSpan inner("parse"); }
    trace_instant("retry", "example.com");
  }
  const std::vector<SpanRecord> records = tracer.stop();
  EXPECT_FALSE(tracing_enabled());

  ASSERT_EQ(records.size(), 4u);
  // Sorted by begin order within the thread, parents before children.
  EXPECT_STREQ(records[0].name, "site-visit");
  EXPECT_EQ(records[0].depth, 0u);
  EXPECT_EQ(records[0].arg, "example.com");
  EXPECT_STREQ(records[1].name, "fetch");
  EXPECT_EQ(records[1].depth, 1u);
  EXPECT_STREQ(records[2].name, "parse");
  EXPECT_EQ(records[2].depth, 1u);
  EXPECT_STREQ(records[3].name, "retry");
  EXPECT_TRUE(records[3].instant);

  // Children start no earlier than the parent and fit inside it.
  EXPECT_GE(records[1].start_us, records[0].start_us);
  EXPECT_LE(records[1].start_us + records[1].dur_us,
            records[0].start_us + records[0].dur_us);
  // Program order: fetch closed before parse began.
  EXPECT_LE(records[1].start_us + records[1].dur_us, records[2].start_us);
}

TEST(Trace, JsonlRoundTripsSpans) {
  Tracer tracer;
  tracer.start();
  {
    TraceSpan outer("site-visit", std::string("site.org"));
    TraceSpan inner("execute");
  }
  const std::vector<SpanRecord> records = tracer.stop();
  const std::string jsonl = Tracer::jsonl(records);

  std::vector<ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(parse_trace_jsonl(jsonl, spans, &error)) << error;
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "site-visit");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].arg, "site.org");
  EXPECT_EQ(spans[1].name, "execute");
  EXPECT_EQ(spans[1].depth, 1);
}

TEST(Trace, ChromeJsonHasMatchedBeginEndPairs) {
  Tracer tracer;
  tracer.start();
  for (int i = 0; i < 5; ++i) {
    TraceSpan outer("site-visit", "site" + std::to_string(i));
    TraceSpan inner("fetch");
    trace_instant("steal");
  }
  const std::vector<SpanRecord> records = tracer.stop();
  const std::string json = Tracer::chrome_json(records);

  // parse_chrome_trace fails on any unmatched or misnested begin/end, so a
  // successful parse is the well-formedness proof.
  std::vector<ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(json, spans, &error)) << error;
  int visits = 0;
  for (const ParsedSpan& span : spans) {
    if (span.name == "site-visit") {
      ++visits;
      EXPECT_EQ(span.arg.rfind("site", 0), 0u) << span.arg;
    }
  }
  EXPECT_EQ(visits, 5);
}

TEST(Trace, MultiThreadSpansStayMatchedPerThread) {
  Tracer tracer;
  tracer.start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        TraceSpan outer("site-visit");
        TraceSpan inner("execute");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<SpanRecord> records = tracer.stop();
  EXPECT_EQ(records.size(), 4u * 50u * 2u);

  std::vector<ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(Tracer::chrome_json(records), spans, &error))
      << error;
  EXPECT_EQ(spans.size(), records.size());
}

TEST(Trace, RingOverflowDropsWholeSpansOnly) {
  Tracer tracer(/*events_per_thread=*/8);
  tracer.start();
  for (int i = 0; i < 100; ++i) {
    TraceSpan span("tiny");
  }
  const std::vector<SpanRecord> records = tracer.stop();
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_LE(records.size(), 8u);
  // The survivors still render to a valid, fully matched trace.
  std::vector<ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(parse_chrome_trace(Tracer::chrome_json(records), spans, &error))
      << error;
  EXPECT_EQ(spans.size(), records.size());
}

TEST(Trace, SecondActiveTracerIsRejected) {
  Tracer first;
  first.start();
  Tracer second;
  EXPECT_THROW(second.start(), std::logic_error);
  first.stop();
  // Once the first stops, a new tracer may start.
  second.start();
  second.stop();
}

TEST(Trace, StopIsIdempotent) {
  Tracer tracer;
  tracer.start();
  { TraceSpan span("once"); }
  const std::vector<SpanRecord> a = tracer.stop();
  const std::vector<SpanRecord> b = tracer.stop();
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

// ------------------------------------------------------------- sampling --

TEST(Trace, SamplingKeepsOneInNPlusEverySlowestSoFar) {
  set_trace_sampling(4);
  Tracer tracer;
  tracer.start();
  for (int i = 0; i < 8; ++i) {
    // i = 0 and i = 4 are sampled in (1-in-4). i = 6 is unsampled but, at
    // ~80ms, slower than the ~40ms watermark i = 0 set — it must be kept
    // retroactively. Every other unsampled visit finishes in microseconds,
    // far below the watermark even on a loaded machine, and must vanish,
    // children included.
    SampledSiteSpan visit("site-visit", "site-" + std::to_string(i));
    TraceSpan child("fetch");
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(40));
    if (i == 6) std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  const std::vector<SpanRecord> records = tracer.stop();
  set_trace_sampling(0);

  std::vector<std::string> visits;
  std::size_t children = 0;
  for (const SpanRecord& record : records) {
    if (std::string(record.name) == "site-visit") visits.push_back(record.arg);
    if (std::string(record.name) == "fetch") ++children;
  }
  EXPECT_EQ(visits, (std::vector<std::string>{"site-0", "site-4", "site-6"}));
  EXPECT_EQ(children, 2u);  // only the sampled visits kept their subtree

  // The retroactively-kept span must not break renderer well-formedness.
  std::vector<ParsedSpan> parsed;
  std::string error;
  EXPECT_TRUE(parse_chrome_trace(Tracer::chrome_json(records), parsed, &error))
      << error;
}

TEST(Trace, SamplingDisabledRecordsEveryVisit) {
  set_trace_sampling(0);
  Tracer tracer;
  tracer.start();
  for (int i = 0; i < 5; ++i) {
    SampledSiteSpan visit("site-visit", std::to_string(i));
  }
  const std::vector<SpanRecord> records = tracer.stop();
  EXPECT_EQ(records.size(), 5u);
}

// ------------------------------------------------------------ tracefile --

TEST(TraceFile, StageStatsRoundTripThroughJson) {
  std::vector<ParsedSpan> spans;
  for (int i = 0; i < 100; ++i) {
    ParsedSpan fetch;
    fetch.name = "fetch";
    fetch.dur_us = static_cast<std::uint64_t>(100 + i);
    spans.push_back(fetch);
    ParsedSpan execute;
    execute.name = "execute";
    execute.dur_us = static_cast<std::uint64_t>(1000 + 10 * i);
    spans.push_back(execute);
  }
  const std::vector<StageStats> stats = trace_stage_stats(spans);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "execute");  // sorted by name
  EXPECT_EQ(stats[0].count, 100u);
  EXPECT_GT(stats[0].p99_us, stats[0].p50_us);

  std::vector<StageStats> parsed;
  std::string error;
  ASSERT_TRUE(parse_stage_stats_json(stage_stats_json(stats), parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(parsed[i].name, stats[i].name);
    EXPECT_EQ(parsed[i].count, stats[i].count);
    EXPECT_NEAR(parsed[i].p50_us, stats[i].p50_us, 0.1);
    EXPECT_NEAR(parsed[i].p95_us, stats[i].p95_us, 0.1);
    EXPECT_NEAR(parsed[i].p99_us, stats[i].p99_us, 0.1);
  }
}

TEST(TraceFile, RegressionGatePassesItselfAndCatchesInflation) {
  std::vector<ParsedSpan> spans;
  for (int i = 0; i < 50; ++i) {
    ParsedSpan span;
    span.name = "execute";
    span.dur_us = static_cast<std::uint64_t>(1000 + i);
    spans.push_back(span);
  }
  const std::vector<StageStats> baseline = trace_stage_stats(spans);

  // Identical percentiles pass at any tolerance.
  EXPECT_FALSE(check_stage_regression(baseline, baseline, 0.0).regressed);

  // 10x slower trips the gate; the report names the stage.
  std::vector<StageStats> slower = baseline;
  slower[0].p50_us *= 10;
  slower[0].p95_us *= 10;
  slower[0].p99_us *= 10;
  const RegressionReport bad = check_stage_regression(baseline, slower, 0.5);
  EXPECT_TRUE(bad.regressed);
  EXPECT_NE(bad.text.find("execute"), std::string::npos) << bad.text;
  EXPECT_NE(bad.text.find("REGRESSED"), std::string::npos) << bad.text;

  // Growth inside the tolerance passes.
  std::vector<StageStats> near = baseline;
  near[0].p50_us *= 1.2;
  near[0].p95_us *= 1.2;
  near[0].p99_us *= 1.2;
  EXPECT_FALSE(check_stage_regression(baseline, near, 0.5).regressed);

  // Stages appearing or disappearing never fail the gate on their own.
  EXPECT_FALSE(check_stage_regression(baseline, {}, 0.5).regressed);
  EXPECT_FALSE(check_stage_regression({}, baseline, 0.5).regressed);
}

TEST(TraceFile, SummaryReportsStagesSlowSitesAndBalance) {
  std::vector<ParsedSpan> spans;
  for (int tid = 0; tid < 2; ++tid) {
    for (int i = 0; i < 10; ++i) {
      ParsedSpan visit;
      visit.name = "site-visit";
      visit.tid = tid;
      visit.depth = 0;
      visit.ts_us = static_cast<std::uint64_t>(i) * 1000;
      visit.dur_us = static_cast<std::uint64_t>(100 + 10 * i + tid);
      visit.arg = "site" + std::to_string(tid) + "-" + std::to_string(i);
      spans.push_back(visit);
    }
  }
  TraceSummaryOptions options;
  options.top_n = 3;
  const std::string summary = render_trace_summary(spans, options);
  EXPECT_NE(summary.find("site-visit"), std::string::npos) << summary;
  EXPECT_NE(summary.find("p95"), std::string::npos);
  EXPECT_NE(summary.find("slowest sites:"), std::string::npos);
  // Slowest span overall is tid 1, i=9 (dur 191).
  EXPECT_NE(summary.find("site1-9"), std::string::npos) << summary;
  EXPECT_NE(summary.find("scheduler balance"), std::string::npos);
  EXPECT_NE(summary.find("tid 1"), std::string::npos);
}

TEST(TraceFile, RejectsMisnestedTraces) {
  const char* misnested = R"({"traceEvents": [
    {"ph": "B", "name": "a", "tid": 0, "ts": 0},
    {"ph": "B", "name": "b", "tid": 0, "ts": 1},
    {"ph": "E", "name": "a", "tid": 0, "ts": 2}
  ]})";
  std::vector<ParsedSpan> spans;
  std::string error;
  EXPECT_FALSE(parse_chrome_trace(misnested, spans, &error));
  EXPECT_NE(error.find("misnested"), std::string::npos) << error;

  const char* unclosed = R"({"traceEvents": [
    {"ph": "B", "name": "a", "tid": 0, "ts": 0}
  ]})";
  spans.clear();
  EXPECT_FALSE(parse_chrome_trace(unclosed, spans, &error));
  EXPECT_NE(error.find("begin without end"), std::string::npos) << error;
}

}  // namespace
}  // namespace fu::obs

// ------------------------------------------------- traced survey, whole --

namespace fu::crawler {
namespace {

TEST(TracedSurvey, ResultsAreBitIdenticalAndTraceIsWellFormed) {
  net::SyntheticWeb::Config web_config;
  web_config.site_count = 24;
  const net::SyntheticWeb web(fu::test::shared_catalog(), web_config);

  SurveyOptions options;
  options.passes = 2;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.threads = 4;

  const SurveyResults untraced = run_survey(web, options);

  obs::Tracer tracer;
  tracer.start();
  const SurveyResults traced = run_survey(web, options);
  const std::vector<obs::SpanRecord> records = tracer.stop();

  // Tracing must not perturb the survey by a single bit.
  ASSERT_EQ(untraced.sites.size(), traced.sites.size());
  for (std::size_t i = 0; i < untraced.sites.size(); ++i) {
    EXPECT_TRUE(untraced.sites[i] == traced.sites[i]) << "site " << i;
  }

  // The trace itself is non-trivial and well formed in both formats.
  EXPECT_FALSE(records.empty());
  std::vector<obs::ParsedSpan> spans;
  std::string error;
  ASSERT_TRUE(obs::parse_chrome_trace(obs::Tracer::chrome_json(records),
                                      spans, &error))
      << error;
  int site_visits = 0;
  bool saw_fetch = false, saw_parse = false, saw_execute = false,
       saw_monkey = false;
  for (const obs::ParsedSpan& span : spans) {
    if (span.instant) continue;
    if (span.name == "site-visit") {
      ++site_visits;
      EXPECT_FALSE(span.arg.empty());  // carries the domain
    }
    saw_fetch |= span.name == "fetch";
    saw_parse |= span.name == "parse";
    saw_execute |= span.name == "execute";
    saw_monkey |= span.name == "monkey-pass";
  }
  EXPECT_EQ(site_visits, 24);
  EXPECT_TRUE(saw_fetch);
  EXPECT_TRUE(saw_parse);
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_monkey);

  std::vector<obs::ParsedSpan> jsonl_spans;
  ASSERT_TRUE(obs::parse_trace_jsonl(obs::Tracer::jsonl(records),
                                     jsonl_spans, &error))
      << error;
  EXPECT_EQ(jsonl_spans.size(), records.size());
}

}  // namespace
}  // namespace fu::crawler
