#include <memory>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "browser/session.h"
#include "script/parser.h"
#include "test_util.h"

namespace fu::browser {
namespace {

const net::SyntheticWeb& web() { return fu::test::small_web(); }
const catalog::Catalog& cat() { return fu::test::shared_catalog(); }

// Find the first healthy site.
const net::SitePlan& ok_site() {
  for (const net::SitePlan& site : web().sites()) {
    if (site.status == net::SiteStatus::kOk) return site;
  }
  throw std::logic_error("no healthy site");
}

// ------------------------------------------------------------- bindings --

TEST(Bindings, EveryInterfaceGetsAConstructorAndPrototype) {
  script::Interpreter interp;
  DomBindings bindings(interp, cat());
  for (const catalog::Catalog::InterfaceInfo& info : cat().interfaces()) {
    const script::Value* ctor = interp.globals().lookup(info.name);
    ASSERT_NE(ctor, nullptr) << info.name;
    ASSERT_TRUE(ctor->is_object());
    EXPECT_FALSE(bindings.prototype_of(info.name).null());
  }
}

TEST(Bindings, MethodSlotsExistOnPrototypes) {
  script::Interpreter interp;
  DomBindings bindings(interp, cat());
  int checked = 0;
  for (const catalog::Feature& f : cat().features()) {
    if (f.kind != catalog::FeatureKind::kMethod) continue;
    const script::ObjectRef proto = bindings.prototype_of(f.interface_name);
    ASSERT_FALSE(proto.null()) << f.full_name;
    EXPECT_TRUE(interp.heap().own_property(proto, f.member_name) != nullptr)
        << f.full_name;
    if (++checked >= 200) break;
  }
}

TEST(Bindings, SingletonAccessPathsResolve) {
  script::Interpreter interp;
  DomBindings bindings(interp, cat());
  // every non-empty global access path must reach a live object
  std::set<std::string> interfaces;
  for (const catalog::Feature& f : cat().features()) {
    interfaces.insert(f.interface_name);
  }
  auto program = script::parse_program(
      "var probes = 0;"
      "if (typeof navigator.plugins === \"object\") { probes = probes + 1; }"
      "if (typeof crypto.subtle === \"object\") { probes = probes + 1; }"
      "if (typeof performance.timing === \"object\") { probes = probes + 1; }"
      "if (typeof localStorage === \"object\") { probes = probes + 1; }"
      "if (typeof window.document === \"object\" || window.document == null)"
      "{ probes = probes + 1; }");
  interp.execute(program);
  EXPECT_DOUBLE_EQ(interp.globals().lookup("probes")->as_number(), 5);
}

TEST(Bindings, NewInstanceInheritsPrototypeMethods) {
  script::Interpreter interp;
  DomBindings bindings(interp, cat());
  auto program = script::parse_program(
      "var xhr = new XMLHttpRequest();"
      "xhr.open(\"GET\", \"/x\");"  // inert native, must not throw
      "var ok = typeof xhr.open;");
  interp.execute(program);
  EXPECT_EQ(interp.globals().lookup("ok")->as_string(), "function");
}

// ------------------------------------------------------------ extension --

struct Instrumented {
  script::Interpreter interp;
  UsageRecorder recorder;
  DomBindings bindings;
  MeasuringExtension extension;
  dom::Document dom;

  Instrumented()
      : recorder(cat().features().size()),
        bindings(interp, cat()),
        extension(cat(), recorder) {
    extension.inject(interp, bindings);
    const script::ObjectRef doc = bindings.begin_page(dom);
    extension.watch_singleton(interp, doc, "Document");
  }

  void run(const std::string& source) {
    static std::vector<std::unique_ptr<script::Program>> retained;
    retained.push_back(
        std::make_unique<script::Program>(script::parse_program(source)));
    interp.execute(*retained.back());
  }

  std::uint64_t count(const char* feature) const {
    const catalog::Feature* f = cat().find_feature(feature);
    EXPECT_NE(f, nullptr) << feature;
    return recorder.count(f->id);
  }
};

TEST(Extension, ShimInstalledAfterIcWarmupIsStillCounted) {
  // The engine's property inline caches must not go stale when the
  // extension swaps prototype methods for counting shims: warm the caches
  // on the original methods, inject mid-page, rerun the *same* Program
  // (same AST, same warmed cache sites) and every call must be counted.
  script::Interpreter interp;
  UsageRecorder recorder(cat().features().size());
  DomBindings bindings(interp, cat());

  static std::vector<std::unique_ptr<script::Program>> retained;
  retained.push_back(
      std::make_unique<script::Program>(script::parse_program(
          "var x = new XMLHttpRequest();"
          "var i = 0;"
          "for (i = 0; i < 50; i = i + 1) { x.open(\"GET\", \"/\"); }")));
  interp.execute(*retained.back());

  MeasuringExtension extension(cat(), recorder);
  extension.inject(interp, bindings);  // replaces the cached methods

  const catalog::Feature* open =
      cat().find_feature("XMLHttpRequest.prototype.open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(recorder.count(open->id), 0u);
  interp.execute(*retained.back());
  EXPECT_EQ(recorder.count(open->id), 50u);
}

TEST(Extension, CountsMethodCallsThroughShims) {
  Instrumented page;
  page.run("var x = new XMLHttpRequest(); x.open(\"GET\", \"/\"); x.open(\"POST\", \"/\"); x.send();");
  EXPECT_EQ(page.count("XMLHttpRequest.prototype.open"), 2u);
  EXPECT_EQ(page.count("XMLHttpRequest.prototype.send"), 1u);
  EXPECT_EQ(page.count("XMLHttpRequest.prototype.abort"), 0u);
}

TEST(Extension, CountsSingletonMethodCalls) {
  Instrumented page;
  page.run("crypto.getRandomValues(8); navigator.sendBeacon(\"/b\");");
  EXPECT_EQ(page.count("Crypto.prototype.getRandomValues"), 1u);
  EXPECT_EQ(page.count("Navigator.prototype.sendBeacon"), 1u);
}

TEST(Extension, ShimPreservesBehaviour) {
  Instrumented page;
  // createElement has a live implementation returning an element wrapper;
  // the shim must still return it.
  page.run("var el = document.createElement(\"div\");"
           "var kind = typeof el; var tag = el.tagName;");
  EXPECT_EQ(page.interp.globals().lookup("kind")->as_string(), "object");
  EXPECT_EQ(page.interp.globals().lookup("tag")->as_string(), "div");
  EXPECT_EQ(page.count("Document.prototype.createElement"), 1u);
}

TEST(Extension, PagesCannotReachTheOriginalImplementation) {
  Instrumented page;
  // Reading the slot and calling it still goes through the shim (§4.2.1):
  // the original only lives in the shim's closure.
  page.run("var f = document.createElement; f(\"span\"); f(\"span\");");
  EXPECT_EQ(page.count("Document.prototype.createElement"), 2u);
}

TEST(Extension, CountsPropertyWritesOnSingletons) {
  Instrumented page;
  const catalog::Feature* prop = nullptr;
  for (const catalog::Feature& f : cat().features()) {
    if (f.kind == catalog::FeatureKind::kProperty &&
        f.interface_name == "Navigator") {
      prop = &f;
      break;
    }
  }
  ASSERT_NE(prop, nullptr) << "catalog should have Navigator properties";
  page.run("navigator." + prop->member_name + " = \"v\";");
  EXPECT_EQ(page.recorder.count(prop->id), 1u);
}

TEST(Extension, DoesNotCountUninstrumentedPropertyWrites) {
  Instrumented page;
  const std::uint64_t before = page.recorder.total_invocations();
  page.run("navigator.myCustomThing = 1; window.onclick = function () {};");
  EXPECT_EQ(page.recorder.total_invocations(), before);
}

TEST(Extension, PropertyWritesOnScriptObjectsAreInvisible) {
  // §4.2.2: Object.watch only works on objects that exist at injection
  // time; writes on script-created objects cannot be observed.
  Instrumented page;
  const std::uint64_t before = page.recorder.total_invocations();
  page.run("var mine = {}; mine.anything = 42;");
  EXPECT_EQ(page.recorder.total_invocations(), before);
}

TEST(Extension, ShimCoverageMatchesCatalog) {
  Instrumented page;
  int methods = 0;
  for (const catalog::Feature& f : cat().features()) {
    methods += f.kind == catalog::FeatureKind::kMethod ? 1 : 0;
  }
  EXPECT_EQ(page.extension.methods_shimmed(), methods);
  EXPECT_GT(page.extension.properties_watched(), 3);
}

// -------------------------------------------------------------- session --

TEST(Session, LoadsPageAndCollectsLinks) {
  BrowserConfig config;
  BrowserSession session(web(), config, 1);
  const PageLoadResult result = session.load_page(web().home_url(ok_site()));
  EXPECT_TRUE(result.loaded);
  EXPECT_GT(result.scripts_total, 0);
  EXPECT_EQ(result.scripts_blocked, 0);
  EXPECT_FALSE(session.links().empty());
  EXPECT_GT(session.usage().total_invocations(), 0u);
}

TEST(Session, DeadSiteFailsToLoad) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int dead = 0;
  for (const net::SitePlan& site : fweb.sites()) {
    if (site.status != net::SiteStatus::kDead) continue;
    ++dead;
    BrowserConfig config;
    BrowserSession session(fweb, config, 1);
    EXPECT_FALSE(session.load_page(fweb.home_url(site)).loaded);
  }
  EXPECT_GT(dead, 0);
}

TEST(Session, BrokenSiteReportsAllScriptsFailed) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int broken = 0;
  for (const net::SitePlan& site : fweb.sites()) {
    if (site.status != net::SiteStatus::kBrokenScripts) continue;
    ++broken;
    BrowserConfig config;
    BrowserSession session(fweb, config, 1);
    const PageLoadResult result = session.load_page(fweb.home_url(site));
    EXPECT_TRUE(result.loaded);
    EXPECT_TRUE(result.all_scripts_failed);
    EXPECT_EQ(session.usage().total_invocations(), 0u);
  }
  EXPECT_GT(broken, 0);
}

TEST(Session, BlockersPreventThirdPartyScripts) {
  // find a site with a sitewide, unframed blockable placement
  for (const net::SitePlan& site : web().sites()) {
    if (site.status != net::SiteStatus::kOk) continue;
    bool has = false;
    for (const net::StandardPlacement& p : site.placements) {
      has |= p.blockable && p.sitewide && !p.framed;
    }
    if (!has) continue;

    BrowserConfig plain;
    BrowserSession a(web(), plain, 1);
    const PageLoadResult without = a.load_page(web().home_url(site));

    BrowserConfig shielded;
    shielded.ad_blocker = blocker::make_ad_blocker(web());
    shielded.tracking_blocker = blocker::make_tracking_blocker(web());
    BrowserSession b(web(), shielded, 1);
    const PageLoadResult with = b.load_page(web().home_url(site));

    EXPECT_EQ(without.scripts_blocked, 0);
    EXPECT_GT(with.scripts_blocked, 0);
    EXPECT_LT(with.scripts_total, without.scripts_total);
    return;
  }
  FAIL() << "no suitable site";
}

TEST(Session, EventHandlersFire) {
  BrowserConfig config;
  BrowserSession session(web(), config, 1);
  session.load_page(web().home_url(ok_site()));
  const std::uint64_t before = session.usage().total_invocations();
  session.fire_event("click");
  session.fire_event("scroll");
  session.fire_event("input");
  session.run_timers();
  // firing events must never crash; usage may or may not grow depending on
  // which placements this site gates behind interaction
  EXPECT_GE(session.usage().total_invocations(), before);
}

TEST(Session, Dom0HandlersFireAndDieWithThePage) {
  BrowserConfig config;
  BrowserSession session(web(), config, 7);
  session.load_page(web().home_url(ok_site()));

  // install a DOM0 handler by running a script through the page's engine
  auto program = script::parse_program(
      "var fired = 0; window.onclick = function () { fired = fired + 1; };");
  session.interpreter().execute(program);
  session.fire_event("click");
  session.fire_event("click");
  EXPECT_DOUBLE_EQ(session.interpreter().globals().lookup("fired")->as_number(),
                   2);

  // navigation clears DOM0 handlers
  session.load_page(web().home_url(ok_site()));
  session.fire_event("click");
  EXPECT_DOUBLE_EQ(session.interpreter().globals().lookup("fired")->as_number(),
                   2);
}

TEST(Session, ResetUsageZeroesCounters) {
  BrowserConfig config;
  BrowserSession session(web(), config, 1);
  session.load_page(web().home_url(ok_site()));
  EXPECT_GT(session.usage().total_invocations(), 0u);
  session.reset_usage();
  EXPECT_EQ(session.usage().total_invocations(), 0u);
  EXPECT_TRUE(session.usage().features_used().empty());
}

TEST(Session, SharedCacheServesIdenticalContent) {
  SiteCache cache;
  BrowserConfig config;
  config.cache = &cache;
  BrowserSession a(web(), config, 1);
  a.load_page(web().home_url(ok_site()));
  const std::size_t resources_after_first = cache.resources.size();
  EXPECT_GT(resources_after_first, 0u);

  BrowserSession b(web(), config, 2);
  b.load_page(web().home_url(ok_site()));
  // second session reuses the cache instead of refetching
  EXPECT_EQ(cache.resources.size(), resources_after_first);
}

TEST(Recorder, CsvOutputMatchesPaperShape) {
  Instrumented page;
  page.run("var x = new XMLHttpRequest(); x.open(\"GET\", \"/\");");
  std::ostringstream out;
  page.recorder.write_csv(out, cat(), "default", "example.com");
  EXPECT_NE(out.str().find("default,example.com,XMLHttpRequest.open(),1"),
            std::string::npos);
}

TEST(Recorder, MergeAccumulates) {
  UsageRecorder a(10), b(10);
  a.record(3);
  b.record(3);
  b.record(7);
  a.merge(b);
  EXPECT_EQ(a.count(3), 2u);
  EXPECT_EQ(a.count(7), 1u);
  EXPECT_EQ(a.total_invocations(), 3u);
  EXPECT_EQ(a.features_used(), (std::vector<catalog::FeatureId>{3, 7}));
}

}  // namespace
}  // namespace fu::browser
