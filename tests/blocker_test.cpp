#include <gtest/gtest.h>

#include "blocker/extensions.h"
#include "blocker/filter.h"
#include "test_util.h"

namespace fu::blocker {
namespace {

net::Url url(const char* text) { return *net::Url::parse(text); }

RequestContext ctx(const char* page_domain, bool third_party,
                   ResourceType type = ResourceType::kScript) {
  RequestContext out;
  out.page_domain = page_domain;
  out.third_party = third_party;
  out.type = type;
  return out;
}

// --------------------------------------------------------- rule parsing --

TEST(RuleParsing, SkipsCommentsBlanksAndHiding) {
  EXPECT_FALSE(parse_rule("! a comment"));
  EXPECT_FALSE(parse_rule("   "));
  EXPECT_FALSE(parse_rule("example.com##.ad"));
}

TEST(RuleParsing, RecognizesAnchors) {
  EXPECT_EQ(parse_rule("||ads.example.com^")->anchor,
            FilterRule::Anchor::kDomain);
  EXPECT_EQ(parse_rule("|http://exact.com/")->anchor,
            FilterRule::Anchor::kStart);
  EXPECT_EQ(parse_rule("/adtag/*")->anchor, FilterRule::Anchor::kNone);
}

TEST(RuleParsing, ParsesOptions) {
  const auto rule = parse_rule("||x.com^$third-party,script,domain=a.com|~b.com");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->opt_third_party);
  EXPECT_TRUE(rule->opt_script);
  EXPECT_EQ(rule->opt_domains, std::vector<std::string>{"a.com"});
  EXPECT_EQ(rule->opt_not_domains, std::vector<std::string>{"b.com"});
}

TEST(RuleParsing, ExceptionRules) {
  const auto rule = parse_rule("@@||good.com^");
  ASSERT_TRUE(rule);
  EXPECT_TRUE(rule->exception);
}

// -------------------------------------------------------- rule matching --

TEST(RuleMatching, DomainAnchorMatchesHostAndSubdomains) {
  const auto rule = parse_rule("||adserve.com^");
  EXPECT_TRUE(rule->matches(url("http://adserve.com/x.js"), ctx("s.com", true)));
  EXPECT_TRUE(
      rule->matches(url("http://cdn.adserve.com/x.js"), ctx("s.com", true)));
  EXPECT_FALSE(
      rule->matches(url("http://notadserve.com/x.js"), ctx("s.com", true)));
  EXPECT_FALSE(
      rule->matches(url("http://adserve.com.evil.org/"), ctx("s.com", true)));
}

TEST(RuleMatching, DomainAnchorWithPath) {
  const auto rule = parse_rule("||adserve.com/tags/*");
  EXPECT_TRUE(rule->matches(url("http://adserve.com/tags/a.js"),
                            ctx("s.com", true)));
  EXPECT_FALSE(
      rule->matches(url("http://adserve.com/other/a.js"), ctx("s.com", true)));
  // '^' matches a separator or the end of the URL, not an ordinary letter
  const auto sep = parse_rule("||adserve.com/tags^");
  EXPECT_TRUE(
      sep->matches(url("http://adserve.com/tags/a.js"), ctx("s.com", true)));
  EXPECT_TRUE(
      sep->matches(url("http://adserve.com/tags"), ctx("s.com", true)));
  EXPECT_FALSE(
      sep->matches(url("http://adserve.com/tagsX"), ctx("s.com", true)));
}

TEST(RuleMatching, StartAnchor) {
  const auto rule = parse_rule("|http://exact.com/path");
  EXPECT_TRUE(
      rule->matches(url("http://exact.com/path/x"), ctx("s.com", true)));
  EXPECT_FALSE(
      rule->matches(url("https://exact.com/path"), ctx("s.com", true)));
}

TEST(RuleMatching, SubstringWithWildcardsAndSeparator) {
  const auto rule = parse_rule("/adtag/*.js^");
  EXPECT_TRUE(rule->matches(url("http://a.com/adtag/tag.js"),
                            ctx("s.com", true)));
  EXPECT_TRUE(rule->matches(url("http://a.com/adtag/x/tag.js?q=1"),
                            ctx("s.com", true)));
  EXPECT_FALSE(
      rule->matches(url("http://a.com/content/tag.css"), ctx("s.com", true)));
}

TEST(RuleMatching, ThirdPartyOption) {
  const auto rule = parse_rule("||tracker.com^$third-party");
  EXPECT_TRUE(
      rule->matches(url("http://tracker.com/t.js"), ctx("site.com", true)));
  EXPECT_FALSE(
      rule->matches(url("http://tracker.com/t.js"), ctx("tracker.com", false)));
}

TEST(RuleMatching, ScriptOption) {
  const auto rule = parse_rule("/collect/*$script");
  EXPECT_TRUE(rule->matches(url("http://t.com/collect/t.js"),
                            ctx("s.com", true, ResourceType::kScript)));
  EXPECT_FALSE(rule->matches(url("http://t.com/collect/p.gif"),
                             ctx("s.com", true, ResourceType::kImage)));
}

TEST(RuleMatching, DomainOptionLimitsPageSite) {
  const auto rule = parse_rule("||ads.com^$domain=news.com");
  EXPECT_TRUE(rule->matches(url("http://ads.com/a.js"), ctx("news.com", true)));
  EXPECT_FALSE(rule->matches(url("http://ads.com/a.js"), ctx("blog.com", true)));
  const auto neg = parse_rule("||ads.com^$domain=~news.com");
  EXPECT_FALSE(neg->matches(url("http://ads.com/a.js"), ctx("news.com", true)));
  EXPECT_TRUE(neg->matches(url("http://ads.com/a.js"), ctx("blog.com", true)));
}

// ---------------------------------------------------------- filter list --

TEST(FilterListTest, BlocksAndWhitelists) {
  const FilterList list = FilterList::parse(R"(
! test list
||ads.com^
@@||ads.com/acceptable/*
/adtag/*
)", "test");
  EXPECT_EQ(list.size(), 3u);
  EXPECT_TRUE(list.should_block(url("http://ads.com/banner.js"),
                                ctx("s.com", true)));
  EXPECT_FALSE(list.should_block(url("http://ads.com/acceptable/x.js"),
                                 ctx("s.com", true)));
  EXPECT_TRUE(list.should_block(url("http://other.com/adtag/t.js"),
                                ctx("s.com", true)));
  EXPECT_FALSE(list.should_block(url("http://other.com/app.js"),
                                 ctx("s.com", true)));
}

TEST(FilterListTest, HidingRules) {
  const FilterList list = FilterList::parse(R"(
##.ad-slot
news.com##.sponsored
)", "test");
  ASSERT_EQ(list.hiding_rules().size(), 2u);
  const auto global = list.hiding_selectors_for("blog.com");
  EXPECT_EQ(global, std::vector<std::string>{".ad-slot"});
  const auto scoped = list.hiding_selectors_for("news.com");
  EXPECT_EQ(scoped.size(), 2u);
}

// ----------------------------------------------- generated study lists ---

TEST(StudyLists, AdListBlocksAdAndDualHostsOnly) {
  const net::SyntheticWeb& web = fu::test::small_web();
  const FilterList list = FilterList::parse(ad_list_text(web), "ads");
  const auto page = ctx("site00001.net", true);
  for (const std::string& host : web.ad_hosts()) {
    EXPECT_TRUE(
        list.should_block(url(("http://" + host + "/adtag/tag.js").c_str()),
                          page))
        << host;
  }
  for (const std::string& host : web.dual_hosts()) {
    EXPECT_TRUE(list.should_block(
        url(("http://" + host + "/sync/tag.js").c_str()), page))
        << host;
  }
  for (const std::string& host : web.tracker_hosts()) {
    EXPECT_FALSE(list.should_block(
        url(("http://" + host + "/collect/t.js").c_str()), page))
        << host;
  }
  // first-party site scripts are never ad-blocked
  EXPECT_FALSE(list.should_block(url("http://site00001.net/js/app0.js"),
                                 ctx("site00001.net", false)));
}

TEST(StudyLists, TrackingListBlocksTrackerAndDualHostsOnly) {
  const net::SyntheticWeb& web = fu::test::small_web();
  const FilterList list = FilterList::parse(tracking_list_text(web), "trk");
  const auto page = ctx("site00001.net", true);
  for (const std::string& host : web.tracker_hosts()) {
    EXPECT_TRUE(list.should_block(
        url(("http://" + host + "/collect/t.js").c_str()), page))
        << host;
  }
  for (const std::string& host : web.dual_hosts()) {
    EXPECT_TRUE(list.should_block(
        url(("http://" + host + "/sync/tag.js").c_str()), page))
        << host;
  }
  for (const std::string& host : web.ad_hosts()) {
    EXPECT_FALSE(list.should_block(
        url(("http://" + host + "/adtag/tag.js").c_str()), page))
        << host;
  }
}

TEST(StudyLists, ExtensionsFactoryWiresNames) {
  const net::SyntheticWeb& web = fu::test::small_web();
  EXPECT_EQ(make_ad_blocker(web)->name(), "AdBlockPlus");
  EXPECT_EQ(make_tracking_blocker(web)->name(), "Ghostery");
  EXPECT_GT(make_ad_blocker(web)->list().size(), 40u);
}

}  // namespace
}  // namespace fu::blocker
