// Engine-identity lock: the survey's measurements must be bit-identical
// across engine refactors. The golden fingerprint below was captured from
// the pre-atom-table engine (std::map property storage, no inline caches);
// any engine change that alters a single recorded feature bit, invocation
// count or page count changes the hash and fails here.
//
// If this test fails, the engine CHANGED OBSERVABLE BEHAVIOUR — that is a
// bug in the optimization, not a stale constant. Only regenerate the
// constant for a deliberate, reviewed behaviour change (and bump
// crawler::kSurveyRevision with it so stale caches die too).
#include <gtest/gtest.h>

#include <cstdio>

#include "browser/session.h"
#include "catalog/catalog.h"
#include "crawler/serialize.h"
#include "crawler/survey.h"
#include "net/web.h"
#include "obs/mem.h"
#include "obs/profiler.h"
#include "support/strings.h"

namespace fu {
namespace {

// FNV-1a over every site outcome's canonical byte encoding, in site order.
std::uint64_t survey_fingerprint(const crawler::SurveyResults& results) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](const std::string& bytes) {
    for (const char c : bytes) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 0x100000001b3ULL;
    }
  };
  for (const crawler::SiteOutcome& outcome : results.sites) {
    mix(crawler::encode_site_outcome(outcome));
  }
  return hash;
}

crawler::SurveyResults small_survey(const net::SyntheticWeb& web,
                                    int threads) {
  crawler::SurveyOptions options;
  options.passes = 2;
  options.threads = threads;
  // Keep the single-blocker configurations on: they exercise the blocking
  // code paths (different scripts execute, different shims fire).
  options.include_ad_only = true;
  options.include_tracking_only = true;
  return crawler::run_survey(web, options);
}

// Captured from the seed engine (see file comment). The survey below is
// fully deterministic: synthetic web, per-pass seeds, no wall-clock input.
constexpr std::uint64_t kGoldenFingerprint = 0xd86025fb02badc7eULL;

TEST(EngineIdentity, SurveyBitsMatchPreOptimizationEngine) {
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 24;
  const net::SyntheticWeb web(catalog, config);

  const crawler::SurveyResults results = small_survey(web, 2);
  const std::uint64_t hash = survey_fingerprint(results);
  EXPECT_EQ(hash, kGoldenFingerprint)
      << "engine output diverged from the pre-optimization baseline; "
      << "actual fingerprint 0x" << std::hex << hash;

  // Sanity: the survey actually measured something (a hash over empty
  // outcomes would "pass" vacuously if crawling broke in a symmetric way).
  EXPECT_GT(results.sites_measured(), 0);
  EXPECT_GT(results.total_invocations(), 0u);
}

TEST(EngineIdentity, FingerprintStableAcrossThreadCounts) {
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 16;
  const net::SyntheticWeb web(catalog, config);

  const std::uint64_t one = survey_fingerprint(small_survey(web, 1));
  const std::uint64_t four = survey_fingerprint(small_survey(web, 4));
  const std::uint64_t eight = survey_fingerprint(small_survey(web, 8));
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(EngineIdentity, FingerprintUnchangedBySessionSnapshots) {
  // Sessions cloned from a frozen heap snapshot must be observably
  // indistinguishable from rebuilt ones: same atom ids, same shape numbers,
  // same interpreter step counts (visible through Date.now), same recorded
  // bits. Both paths must land exactly on the golden fingerprint.
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 24;
  const net::SyntheticWeb web(catalog, config);

  browser::set_session_snapshots_enabled(false);
  const std::uint64_t rebuilt = survey_fingerprint(small_survey(web, 2));
  browser::set_session_snapshots_enabled(true);
  const std::uint64_t cloned = survey_fingerprint(small_survey(web, 2));

  EXPECT_EQ(rebuilt, kGoldenFingerprint)
      << "rebuild path diverged; actual fingerprint 0x" << std::hex << rebuilt;
  EXPECT_EQ(cloned, kGoldenFingerprint)
      << "snapshot-clone path diverged; actual fingerprint 0x" << std::hex
      << cloned;
}

TEST(EngineIdentity, FingerprintUnchangedByProfiling) {
  // The sampling profiler reads worker frame stacks and the clock — never
  // survey state. Running the golden survey under an aggressive sampler
  // must reproduce the exact golden fingerprint, bit for bit.
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 24;
  const net::SyntheticWeb web(catalog, config);

  obs::Profiler profiler(997.0);  // ~10x the default rate
  profiler.start();
  const std::uint64_t profiled = survey_fingerprint(small_survey(web, 2));
  profiler.stop();
  EXPECT_EQ(profiled, kGoldenFingerprint)
      << "profiling changed measured bits; actual fingerprint 0x" << std::hex
      << profiled;
}

TEST(EngineIdentity, FingerprintUnchangedByMemProfiling) {
  // Domain accounting is always on (the golden fingerprint above already
  // covers it); the allocation profiler adds stack capture on every tracked
  // allocation at period 1 — the most invasive setting — and must still
  // change nothing the survey measures.
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 24;
  const net::SyntheticWeb web(catalog, config);

  obs::mem::MemProfiler profiler(1);
  profiler.start();
  const std::uint64_t profiled = survey_fingerprint(small_survey(web, 2));
  profiler.stop();
  EXPECT_EQ(profiled, kGoldenFingerprint)
      << "allocation profiling changed measured bits; actual fingerprint 0x"
      << std::hex << profiled;
}

TEST(EngineIdentity, FingerprintUnchangedByLiveServing) {
  // The metrics server is strictly a reader; running a survey with
  // `--serve 0` (live snapshots, delta ticks, progress meter attached) must
  // leave every measured bit identical to the unserved run.
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 16;
  const net::SyntheticWeb web(catalog, config);

  const std::uint64_t plain = survey_fingerprint(small_survey(web, 4));

  crawler::SurveyOptions options;
  options.passes = 2;
  options.threads = 4;
  options.include_ad_only = true;
  options.include_tracking_only = true;
  options.serve_port = 0;  // ephemeral live endpoint for the whole run
  options.serve_stall_secs = 0.01;  // force stall bookkeeping to engage too
  const std::uint64_t served =
      survey_fingerprint(crawler::run_survey(web, options));
  EXPECT_EQ(plain, served);
}

}  // namespace
}  // namespace fu
