// Heap-snapshot and session-clone isolation tests. The snapshot subsystem
// freezes one fully-built session image per catalog and instantiates later
// sessions by cloning it (script/snapshot.h, browser/session.cpp). These
// tests pin the two properties that make that safe:
//   - isolation: writes in one clone never reach the frozen image or any
//     other clone (including clones created concurrently on worker threads,
//     which is what the TSan CI job exercises here), and
//   - equivalence: a cloned session is observably identical to a session
//     rebuilt from scratch, down to interpreter step counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "browser/session.h"
#include "catalog/catalog.h"
#include "net/web.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/snapshot.h"

namespace fu {
namespace {

using script::Heap;
using script::HeapSnapshot;
using script::Interpreter;
using script::ObjectRef;
using script::Value;

// ------------------------------------------------- script-layer clones ----

TEST(HeapSnapshot, CloneReproducesImage) {
  Interpreter source;
  Heap& heap = source.heap();
  const ObjectRef gadget = heap.make_object(ObjectRef(), "Gadget");
  heap.define_property(gadget, "answer", Value(42.0));
  source.globals().define("gadget", Value(gadget));

  const HeapSnapshot snapshot(source);
  Interpreter clone(&snapshot, /*rng_seed=*/7);

  const Value* bound = clone.globals().lookup("gadget");
  ASSERT_NE(bound, nullptr);
  ASSERT_TRUE(bound->is_object());
  // Cloning preserves heap indices bit-for-bit, so ObjectRefs captured
  // before the freeze resolve unchanged in every clone.
  EXPECT_EQ(bound->as_object().index(), gadget.index());
  EXPECT_EQ(
      clone.heap().get_property(bound->as_object(), "answer").to_number(),
      42.0);
}

TEST(HeapSnapshot, CloneWritesNeverLeakIntoImageOrLaterClones) {
  Interpreter source;
  Heap& heap = source.heap();
  const ObjectRef gadget = heap.make_object(ObjectRef(), "Gadget");
  heap.define_property(gadget, "answer", Value(42.0));
  source.globals().define("gadget", Value(gadget));

  const HeapSnapshot snapshot(source);
  const std::size_t image_objects = snapshot.object_count();

  {
    Interpreter first(&snapshot, 1);
    const script::Program program = script::parse_program(
        "gadget.answer = 13;\n"
        "gadget.extra = true;\n"
        "var mine = { fresh: 1 };\n");
    first.execute(program);
    // The writer sees its own mutations...
    EXPECT_EQ(first.heap().get_property(gadget, "answer").to_number(), 13.0);
  }

  // ...but the image is untouched and a later clone starts pristine.
  EXPECT_EQ(snapshot.object_count(), image_objects);
  Interpreter second(&snapshot, 2);
  EXPECT_EQ(second.heap().get_property(gadget, "answer").to_number(), 42.0);
  EXPECT_TRUE(second.heap().get_property(gadget, "extra").is_undefined());
  EXPECT_EQ(second.globals().lookup("mine"), nullptr);
}

TEST(HeapSnapshot, CaptureRejectsScriptFunctionsOnHeap) {
  // A script function's closure points into its source interpreter's
  // environment chain; sharing it across sessions would dangle. Capture is
  // only legal on a pre-script session image, and the constructor enforces
  // that instead of silently producing an unsafe snapshot.
  Interpreter source;
  const script::Program program =
      script::parse_program("function f() { return 1; }\n");
  source.execute(program);
  EXPECT_THROW(HeapSnapshot{source}, std::logic_error);
}

// ----------------------------------------------- browser-layer sessions ----

// Run the same deterministic visit in any session: home page, one monkey
// event, timers.
std::uint64_t visit_home(browser::BrowserSession& session,
                         const net::SyntheticWeb& web, std::size_t site) {
  session.load_page(web.home_url(web.sites()[site]));
  session.fire_event("click");
  session.run_timers();
  return session.usage().total_invocations();
}

TEST(SessionSnapshot, CloneMatchesRebuiltSessionExactly) {
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 6;
  const net::SyntheticWeb web(catalog, config);
  const browser::BrowserConfig browser_config;

  // Reference: a session rebuilt from scratch, snapshots disabled.
  browser::set_session_snapshots_enabled(false);
  browser::BrowserSession rebuilt(web, browser_config, /*seed=*/99);
  EXPECT_FALSE(rebuilt.cloned_from_snapshot());
  visit_home(rebuilt, web, 0);

  browser::set_session_snapshots_enabled(true);
  // Dirty one clone on a different site first: its writes must not taint
  // the shared image the next clone is cut from.
  browser::BrowserSession dirty(web, browser_config, /*seed=*/1234);
  visit_home(dirty, web, 1);

  browser::BrowserSession clone(web, browser_config, /*seed=*/99);
  EXPECT_TRUE(clone.cloned_from_snapshot());
  visit_home(clone, web, 0);

  EXPECT_EQ(clone.extension().methods_shimmed(),
            rebuilt.extension().methods_shimmed());
  EXPECT_EQ(clone.extension().properties_watched(),
            rebuilt.extension().properties_watched());
  EXPECT_EQ(clone.usage().total_invocations(),
            rebuilt.usage().total_invocations());
  for (std::size_t fid = 0; fid < clone.usage().feature_count(); ++fid) {
    ASSERT_EQ(clone.usage().count(static_cast<catalog::FeatureId>(fid)),
              rebuilt.usage().count(static_cast<catalog::FeatureId>(fid)))
        << "feature " << fid << " diverged between clone and rebuild";
  }
  // Step counts are observable through Date.now: the strictest equivalence
  // signal short of the full survey fingerprint.
  EXPECT_EQ(clone.interpreter().steps_executed(),
            rebuilt.interpreter().steps_executed());
}

TEST(SessionSnapshot, ConcurrentWorkerCloneSessionsAreIsolated) {
  // Survey workers construct sessions concurrently; every one of them
  // clones the same frozen image. The image is read-only after publication,
  // so concurrent construction must be race-free (TSan checks that in CI)
  // and every thread must measure exactly the single-threaded totals.
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 4;
  const net::SyntheticWeb web(catalog, config);
  const browser::BrowserConfig browser_config;
  browser::set_session_snapshots_enabled(true);

  std::vector<std::uint64_t> expected;
  for (std::size_t site = 0; site < web.sites().size(); ++site) {
    browser::BrowserSession session(web, browser_config, /*seed=*/7);
    expected.push_back(visit_home(session, web, site));
  }

  constexpr int kThreads = 8;
  std::vector<std::vector<std::uint64_t>> measured(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t site = 0; site < web.sites().size(); ++site) {
        browser::BrowserSession session(web, browser_config, /*seed=*/7);
        measured[t].push_back(visit_home(session, web, site));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(measured[t], expected) << "thread " << t << " diverged";
  }
}

}  // namespace
}  // namespace fu
