#include <gtest/gtest.h>

#include "dom/html.h"
#include "dom/selector.h"

namespace fu::dom {
namespace {

std::unique_ptr<Document> fixture() {
  return parse_html(R"(
    <html><body>
      <nav id="menu" class="top sticky">
        <ul>
          <li class="item first"><a href="/home">Home</a></li>
          <li class="item"><a href="http://other.com/x" rel="external">Out</a></li>
        </ul>
      </nav>
      <div class="content">
        <p id="intro" data-lang="en">intro text</p>
        <div class="ad-slot banner"><img src="banner.png"></div>
        <input type="text" name="q">
        <input type="submit">
      </div>
    </body></html>
  )");
}

// ---------------------------------------------------------------- parse --

TEST(SelectorParse, RejectsMalformed) {
  EXPECT_FALSE(Selector::parse(""));
  EXPECT_FALSE(Selector::parse("   "));
  EXPECT_FALSE(Selector::parse("#"));
  EXPECT_FALSE(Selector::parse("."));
  EXPECT_FALSE(Selector::parse("div["));
  EXPECT_FALSE(Selector::parse("div[attr"));
  EXPECT_FALSE(Selector::parse("div[attr^x]"));
  EXPECT_FALSE(Selector::parse("a,,b"));
  EXPECT_FALSE(Selector::parse("a >"));
}

TEST(SelectorParse, AcceptsTheSupportedGrammar) {
  for (const char* text :
       {"div", "*", "#menu", ".item", "li.item.first", "div#x.y",
        "[data-lang]", "input[type=text]", "a[href^=\"http\"]",
        "nav a", "ul > li", "a, button, .cta", "div .ad-slot img"}) {
    EXPECT_TRUE(Selector::parse(text)) << text;
  }
}

// ---------------------------------------------------------------- match --

TEST(SelectorMatch, ByTagIdClass) {
  auto doc = fixture();
  EXPECT_EQ(Selector::parse("li")->select_all(*doc).size(), 2u);
  EXPECT_EQ(Selector::parse("#menu")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse(".item")->select_all(*doc).size(), 2u);
  EXPECT_EQ(Selector::parse(".item.first")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("li.first")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("p#intro")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("span")->select_all(*doc).size(), 0u);
  EXPECT_GT(Selector::parse("*")->select_all(*doc).size(), 10u);
}

TEST(SelectorMatch, ClassMatchingIsExactWord) {
  auto doc = fixture();
  // "top" and "sticky" are classes of nav; "tops" is not
  EXPECT_EQ(Selector::parse(".top")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse(".sticky")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse(".tops")->select_all(*doc).size(), 0u);
  EXPECT_EQ(Selector::parse(".stick")->select_all(*doc).size(), 0u);
}

TEST(SelectorMatch, AttributeOperators) {
  auto doc = fixture();
  EXPECT_EQ(Selector::parse("[data-lang]")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("[data-lang=en]")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("[data-lang=fr]")->select_all(*doc).size(), 0u);
  EXPECT_EQ(Selector::parse("input[type=text]")->select_all(*doc).size(), 1u);
  EXPECT_EQ(Selector::parse("a[href^=\"http\"]")->select_all(*doc).size(),
            1u);
  EXPECT_EQ(Selector::parse("a[href$=\"home\"]")->select_all(*doc).size(),
            1u);
  EXPECT_EQ(Selector::parse("img[src*=\"banner\"]")->select_all(*doc).size(),
            1u);
  EXPECT_EQ(Selector::parse("[class~=\"banner\"]")->select_all(*doc).size(),
            1u);
  EXPECT_EQ(Selector::parse("[class~=\"ban\"]")->select_all(*doc).size(), 0u);
}

TEST(SelectorMatch, DescendantCombinator) {
  auto doc = fixture();
  EXPECT_EQ(Selector::parse("nav a")->select_all(*doc).size(), 2u);
  EXPECT_EQ(Selector::parse("#menu .item a")->select_all(*doc).size(), 2u);
  EXPECT_EQ(Selector::parse(".content a")->select_all(*doc).size(), 0u);
}

TEST(SelectorMatch, ChildCombinator) {
  auto doc = fixture();
  EXPECT_EQ(Selector::parse("ul > li")->select_all(*doc).size(), 2u);
  // <a> is a grandchild of <ul>, not a child
  EXPECT_EQ(Selector::parse("ul > a")->select_all(*doc).size(), 0u);
  EXPECT_EQ(Selector::parse("li > a")->select_all(*doc).size(), 2u);
}

TEST(SelectorMatch, SelectorLists) {
  auto doc = fixture();
  EXPECT_EQ(Selector::parse("input, img")->select_all(*doc).size(), 3u);
  EXPECT_EQ(Selector::parse("#intro, .ad-slot, nav")->select_all(*doc).size(),
            3u);
}

TEST(SelectorMatch, SelectFirstIsDocumentOrder) {
  auto doc = fixture();
  Element* first = Selector::parse("input")->select_first(*doc);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->attribute("type"), "text");
  EXPECT_EQ(Selector::parse("video")->select_first(*doc), nullptr);
}

TEST(SelectorMatch, AdHidingShape) {
  // the exact patterns the generated blocking lists use
  auto doc = fixture();
  const auto hidden = Selector::parse(".ad-slot")->select_all(*doc);
  ASSERT_EQ(hidden.size(), 1u);
  EXPECT_EQ(hidden[0]->tag(), "div");
}

// Parameterized sweep: pattern/count pairs over the fixture document.
struct SelectorCase {
  const char* selector;
  std::size_t expected;
};

class SelectorSweep : public ::testing::TestWithParam<SelectorCase> {};

TEST_P(SelectorSweep, CountMatches) {
  auto doc = fixture();
  const auto sel = Selector::parse(GetParam().selector);
  ASSERT_TRUE(sel) << GetParam().selector;
  EXPECT_EQ(sel->select_all(*doc).size(), GetParam().expected)
      << GetParam().selector;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectorSweep,
    ::testing::Values(SelectorCase{"body div", 2},
                      SelectorCase{"body > div", 1},
                      SelectorCase{"div div", 1},
                      SelectorCase{"nav ul li a", 2},
                      SelectorCase{"nav > ul > li > a", 2},
                      SelectorCase{"html body nav", 1},
                      SelectorCase{"li a[rel=external]", 1},
                      SelectorCase{"div.content input", 2},
                      SelectorCase{".content > p", 1},
                      SelectorCase{".content > a", 0},
                      SelectorCase{"p, li, img", 4}));

}  // namespace
}  // namespace fu::dom
