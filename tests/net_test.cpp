#include <set>

#include <gtest/gtest.h>

#include "catalog/names.h"
#include "net/scriptgen.h"
#include "net/url.h"
#include "net/web.h"
#include "script/parser.h"
#include "test_util.h"

namespace fu::net {
namespace {

const SyntheticWeb& web() { return fu::test::small_web(); }

// ------------------------------------------------------------------ URL --

TEST(UrlTest, ParsesComponents) {
  const auto u = Url::parse("http://www.example.com:8080/a/b.html?x=1#frag");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->scheme(), "http");
  EXPECT_EQ(u->host(), "www.example.com");
  EXPECT_EQ(u->port(), 8080);
  EXPECT_EQ(u->path(), "/a/b.html");
  EXPECT_EQ(u->query(), "x=1");
}

TEST(UrlTest, DefaultsAndNormalization) {
  const auto u = Url::parse("HTTPS://Example.COM");
  ASSERT_TRUE(u);
  EXPECT_EQ(u->scheme(), "https");
  EXPECT_EQ(u->host(), "example.com");
  EXPECT_EQ(u->path(), "/");
  EXPECT_EQ(u->spec(), "https://example.com/");
}

TEST(UrlTest, RejectsGarbage) {
  EXPECT_FALSE(Url::parse(""));
  EXPECT_FALSE(Url::parse("not a url"));
  EXPECT_FALSE(Url::parse("ftp://example.com/"));
  EXPECT_FALSE(Url::parse("http://"));
  EXPECT_FALSE(Url::parse("http://bad host/"));
  EXPECT_FALSE(Url::parse("http://h:99999/"));
}

TEST(UrlTest, ResolveVariants) {
  const Url base = *Url::parse("http://site.com/a/b/page.html?old=1");
  EXPECT_EQ(base.resolve("http://other.com/x")->spec(), "http://other.com/x");
  EXPECT_EQ(base.resolve("/root.html")->spec(), "http://site.com/root.html");
  EXPECT_EQ(base.resolve("sibling.html")->spec(),
            "http://site.com/a/b/sibling.html");
  EXPECT_EQ(base.resolve("x.html?q=2")->query(), "q=2");
  EXPECT_EQ(base.resolve("")->spec(), base.spec());
}

TEST(UrlTest, PathSegmentsAndDirectory) {
  const Url u = *Url::parse("http://s.com/a/b/c.html");
  EXPECT_EQ(u.path_segments(), (std::vector<std::string>{"a", "b", "c.html"}));
  EXPECT_EQ(u.directory(), "/a/b");
  EXPECT_EQ(Url::parse("http://s.com/")->directory(), "/");
}

TEST(UrlTest, RegistrableDomain) {
  EXPECT_EQ(registrable_domain("www.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("a.b.example.com"), "example.com");
  EXPECT_EQ(registrable_domain("example.com"), "example.com");
  EXPECT_EQ(registrable_domain("www.example.co.uk"), "example.co.uk");
  EXPECT_EQ(registrable_domain("localhost"), "localhost");
}

TEST(UrlTest, SameSiteAndDomainMatch) {
  EXPECT_TRUE(same_site(*Url::parse("http://www.s.com/a"),
                        *Url::parse("http://cdn.s.com/b")));
  EXPECT_FALSE(same_site(*Url::parse("http://s.com/"),
                         *Url::parse("http://t.com/")));
  EXPECT_TRUE(host_matches_domain("cdn.ads.com", "ads.com"));
  EXPECT_TRUE(host_matches_domain("ads.com", "ads.com"));
  EXPECT_FALSE(host_matches_domain("notads.com", "ads.com"));
}

// -------------------------------------------------------- web structure --

TEST(SyntheticWebTest, SiteCountAndRanking) {
  EXPECT_EQ(web().sites().size(), 120u);
  for (std::size_t i = 0; i < web().sites().size(); ++i) {
    EXPECT_EQ(web().sites()[i].rank, static_cast<int>(i) + 1);
  }
}

TEST(SyntheticWebTest, VisitWeightsAreZipfian) {
  double total = 0;
  double previous = 1.0;
  for (const SitePlan& site : web().sites()) {
    EXPECT_LE(site.visit_weight, previous);
    previous = site.visit_weight;
    total += site.visit_weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(web().sites().front().visit_weight,
            10 * web().sites().back().visit_weight);
}

TEST(SyntheticWebTest, DeterministicAcrossConstructions) {
  SyntheticWeb::Config config;
  config.site_count = 30;
  const SyntheticWeb a(fu::test::shared_catalog(), config);
  const SyntheticWeb b(fu::test::shared_catalog(), config);
  for (std::size_t i = 0; i < a.sites().size(); ++i) {
    EXPECT_EQ(a.sites()[i].domain, b.sites()[i].domain);
    EXPECT_EQ(a.sites()[i].placements.size(), b.sites()[i].placements.size());
    EXPECT_EQ(a.sites()[i].status, b.sites()[i].status);
  }
  const Url home = a.home_url(a.sites()[0]);
  EXPECT_EQ(a.fetch(home)->body, b.fetch(home)->body);
}

TEST(SyntheticWebTest, LookupByHostHandlesSubdomains) {
  const SitePlan& site = web().sites()[2];
  EXPECT_EQ(web().site_by_host(site.domain), &site);
  EXPECT_EQ(web().site_by_host("www." + site.domain), &site);
  EXPECT_EQ(web().site_by_host("unknown.example"), nullptr);
}

TEST(SyntheticWebTest, PlacementInvariants) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  for (const SitePlan& site : web().sites()) {
    for (const StandardPlacement& p : site.placements) {
      ASSERT_LT(p.standard, cat.standard_count());
      EXPECT_FALSE(p.features.empty());
      // the standard's flagship feature is always present
      EXPECT_EQ(p.features.front(), cat.features_of(p.standard).front());
      if (p.blockable) {
        EXPECT_NE(p.script_class, ScriptClass::kFirstParty);
        EXPECT_FALSE(p.third_party_host.empty());
      } else {
        EXPECT_EQ(p.script_class, ScriptClass::kFirstParty);
      }
      if (!p.sitewide) {
        EXPECT_GE(p.section, 0);
        EXPECT_LT(p.section, site.sections);
      }
      for (const catalog::FeatureId fid : p.features) {
        EXPECT_EQ(cat.feature(fid).standard, p.standard);
      }
    }
  }
}

TEST(SyntheticWebTest, FailureRatesAreConfigured) {
  int dead = 0, broken = 0;
  for (const SitePlan& site : web().sites()) {
    dead += site.status == SiteStatus::kDead ? 1 : 0;
    broken += site.status == SiteStatus::kBrokenScripts ? 1 : 0;
  }
  // ~2.7% combined, like the paper's 267/10000 (§4.3.3); loose bounds for
  // a 120-site sample.
  EXPECT_LE(dead + broken, 12);
}

// ------------------------------------------------------------ fetching ---

TEST(Fetching, HomePageHasScaffoldScriptsAndLinks) {
  const SitePlan& site = web().sites()[0];
  const auto res = web().fetch(web().home_url(site));
  ASSERT_TRUE(res);
  EXPECT_EQ(res->kind, ResourceKind::kDocument);
  EXPECT_NE(res->body.find("/js/app0.js"), std::string::npos);
  EXPECT_NE(res->body.find("<a href=\"/s0/p0.html\""), std::string::npos);
}

TEST(Fetching, SectionAndDeepPages) {
  const SitePlan& site = web().sites()[0];
  EXPECT_TRUE(web().fetch(*Url::parse("http://" + site.domain + "/s0/p0.html")));
  EXPECT_TRUE(web().fetch(
      *Url::parse("http://" + site.domain + "/s0/p0/d0.html")));
  // out-of-range section/page/deep indexes 404
  EXPECT_FALSE(web().fetch(
      *Url::parse("http://" + site.domain + "/s99/p0.html")));
  EXPECT_FALSE(web().fetch(
      *Url::parse("http://" + site.domain + "/s0/p99.html")));
  EXPECT_FALSE(web().fetch(
      *Url::parse("http://" + site.domain + "/s0/p0/d9.html")));
  EXPECT_FALSE(web().fetch(*Url::parse("http://" + site.domain + "/nope")));
}

TEST(Fetching, FirstPartyScriptsParse) {
  const SitePlan* site = nullptr;
  for (const SitePlan& candidate : web().sites()) {
    if (candidate.status == SiteStatus::kOk) {
      site = &candidate;
      break;
    }
  }
  ASSERT_NE(site, nullptr);
  const auto res =
      web().fetch(*Url::parse("http://" + site->domain + "/js/app0.js"));
  ASSERT_TRUE(res);
  EXPECT_EQ(res->kind, ResourceKind::kScript);
  EXPECT_NO_THROW(script::parse_program(res->body));
}

TEST(Fetching, DeadSitesNeverRespond) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int dead = 0;
  for (const SitePlan& site : fweb.sites()) {
    if (site.status != SiteStatus::kDead) continue;
    ++dead;
    EXPECT_FALSE(fweb.fetch(fweb.home_url(site)));
  }
  EXPECT_GT(dead, 0);
}

TEST(Fetching, BrokenSitesServeSyntaxErrors) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int broken = 0;
  for (const SitePlan& site : fweb.sites()) {
    if (site.status != SiteStatus::kBrokenScripts) continue;
    ++broken;
    const auto res =
        fweb.fetch(*Url::parse("http://" + site.domain + "/js/app0.js"));
    ASSERT_TRUE(res);
    EXPECT_THROW(script::parse_program(res->body), script::SyntaxError);
  }
  EXPECT_GT(broken, 0);
}

TEST(Fetching, ThirdPartyTagScripts) {
  // find a blockable placement and fetch its tag
  for (const SitePlan& site : web().sites()) {
    if (site.status != SiteStatus::kOk) continue;
    for (std::size_t i = 0; i < site.placements.size(); ++i) {
      const StandardPlacement& p = site.placements[i];
      if (!p.blockable) continue;
      const char* path = p.script_class == ScriptClass::kAd ? "/adtag/tag.js"
                         : p.script_class == ScriptClass::kTracker
                             ? "/collect/t.js"
                             : "/sync/tag.js";
      const auto res = web().fetch(*Url::parse(
          "http://" + p.third_party_host + path + "?site=" + site.domain +
          "&p=" + std::to_string(i)));
      ASSERT_TRUE(res);
      EXPECT_EQ(res->kind, ResourceKind::kScript);
      EXPECT_NO_THROW(script::parse_program(res->body));
      return;
    }
  }
  FAIL() << "no blockable placement found";
}

TEST(Fetching, ThirdPartyRejectsBadParameters) {
  const std::string host = web().ad_hosts().front();
  EXPECT_FALSE(web().fetch(*Url::parse("http://" + host + "/adtag/tag.js")));
  EXPECT_FALSE(web().fetch(
      *Url::parse("http://" + host + "/adtag/tag.js?site=nope.com&p=0")));
  EXPECT_FALSE(web().fetch(*Url::parse(
      "http://" + host + "/adtag/tag.js?site=" + web().sites()[0].domain +
      "&p=99999")));
}

// ----------------------------------------------------------- scriptgen ---

TEST(ScriptGen, SnippetsExerciseTheirFeaturesAndParse) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  support::Rng rng(1);
  int checked = 0;
  for (const SitePlan& site : web().sites()) {
    for (const StandardPlacement& p : site.placements) {
      const std::string code = placement_snippet(cat, p, 7, rng);
      EXPECT_NO_THROW(script::parse_program(code));
      // every selected feature's member name appears in the code
      for (const catalog::FeatureId fid : p.features) {
        EXPECT_NE(code.find(cat.feature(fid).member_name), std::string::npos)
            << cat.feature(fid).full_name;
      }
      if (++checked >= 60) return;
    }
  }
}

TEST(ScriptGen, TriggerWrappersAreApplied) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  support::Rng rng(2);
  StandardPlacement p;
  p.standard = cat.standard_by_abbreviation("AJAX");
  p.features = {cat.features_of(p.standard).front()};

  p.trigger = Trigger::kClick;
  EXPECT_NE(placement_snippet(cat, p, 0, rng).find("addEventListener(\"click\""),
            std::string::npos);
  p.dom0_handlers = true;
  EXPECT_NE(placement_snippet(cat, p, 0, rng).find("window.onclick"),
            std::string::npos);
  p.trigger = Trigger::kTimer;
  EXPECT_NE(placement_snippet(cat, p, 0, rng).find("setTimeout"),
            std::string::npos);
}

TEST(ScriptGen, FillerIsFeatureFreeAndParses) {
  support::Rng rng(3);
  const std::string code = filler_code(rng, 10);
  EXPECT_NO_THROW(script::parse_program(code));
  // no DOM access — filler must not touch instrumented objects
  EXPECT_EQ(code.find("document."), std::string::npos);
  EXPECT_EQ(code.find("navigator."), std::string::npos);
  EXPECT_EQ(code.find("new "), std::string::npos);
}

TEST(ScriptGen, BrokenScriptFailsToParse) {
  EXPECT_THROW(script::parse_program(broken_script()), script::SyntaxError);
}

// ------------------------------------------------------- calibration ----

TEST(Calibration, PopularStandardsAppearOnMostSites) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  const catalog::StandardId dom1 = cat.standard_by_abbreviation("DOM1");
  int present = 0, ok_sites = 0;
  for (const SitePlan& site : web().sites()) {
    if (site.status != SiteStatus::kOk) continue;
    ++ok_sites;
    for (const StandardPlacement& p : site.placements) {
      if (p.standard == dom1) {
        ++present;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(present) / ok_sites, 0.8);
}

TEST(Calibration, TiltIsBoundedAndPinnedStandardsPositive) {
  for (const catalog::StandardSpec& spec : catalog::standard_specs()) {
    const double tilt = popularity_tilt(spec);
    EXPECT_GE(tilt, -1.0);
    EXPECT_LE(tilt, 1.0);
  }
  const catalog::Catalog& cat = fu::test::shared_catalog();
  EXPECT_GT(popularity_tilt(
                cat.standard(cat.standard_by_abbreviation("DOM4"))),
            0.5);
  EXPECT_GT(popularity_tilt(cat.standard(cat.standard_by_abbreviation("TC"))),
            0.5);
}

}  // namespace
}  // namespace fu::net
