#include <map>
#include <set>

#include <gtest/gtest.h>

#include "catalog/cves.h"
#include "catalog/growth.h"
#include "catalog/names.h"
#include "catalog/releases.h"
#include "test_util.h"

namespace fu::catalog {
namespace {

const Catalog& cat() { return fu::test::shared_catalog(); }

// ------------------------------------------------------------- totals ----

TEST(CatalogTotals, MatchesThePaper) {
  EXPECT_EQ(cat().standard_count(), 75u);          // 74 standards + NS
  EXPECT_EQ(cat().features().size(), 1392u);       // §3.2
}

TEST(CatalogTotals, SpecTableIsInternallyConsistent) {
  int features = 0;
  int used = 0;
  for (const StandardSpec& spec : standard_specs()) {
    EXPECT_GE(spec.feature_count, 1) << spec.name;
    EXPECT_GE(spec.used_features, 0) << spec.name;
    EXPECT_LE(spec.used_features, spec.feature_count) << spec.name;
    EXPECT_GE(spec.target_sites, 0) << spec.name;
    EXPECT_LE(spec.target_sites, kAlexaSites) << spec.name;
    EXPECT_GE(spec.block_rate, 0.0) << spec.name;
    EXPECT_LE(spec.block_rate, 1.0) << spec.name;
    if (spec.target_sites == 0) {
      EXPECT_EQ(spec.used_features, 0) << spec.name;
    } else {
      EXPECT_GE(spec.used_features, 1) << spec.name;
    }
    features += spec.feature_count;
    used += spec.used_features;
  }
  EXPECT_EQ(features, kFeatureTotal);
  // never-used features ~689 of 1,392 (§5.3)
  EXPECT_NEAR(kFeatureTotal - used, 689, 15);
}

TEST(CatalogTotals, ElevenStandardsAreNeverUsed) {
  int unused = 0;
  for (const StandardSpec& spec : standard_specs()) {
    unused += spec.target_sites == 0 ? 1 : 0;
  }
  EXPECT_EQ(unused, 11);  // §5.2
}

TEST(CatalogTotals, AbbreviationsAreUnique) {
  std::set<std::string> seen;
  for (const StandardSpec& spec : standard_specs()) {
    EXPECT_TRUE(seen.insert(spec.abbreviation).second)
        << "duplicate abbreviation " << spec.abbreviation;
  }
}

// ----------------------------------------------------- Table 2 verbatim --

struct Table2Row {
  const char* abbrev;
  int features;
  int sites;
  double block_rate;
  int cves;
};

class Table2Spec : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Spec, MatchesPaperRow) {
  const Table2Row& row = GetParam();
  const StandardId sid = cat().standard_by_abbreviation(row.abbrev);
  ASSERT_NE(sid, kInvalidStandard) << row.abbrev;
  const StandardSpec& spec = cat().standard(sid);
  EXPECT_EQ(spec.feature_count, row.features);
  EXPECT_EQ(spec.target_sites, row.sites);
  EXPECT_NEAR(spec.block_rate, row.block_rate, 1e-9);
  EXPECT_EQ(spec.cve_count, row.cves);
  EXPECT_EQ(cat().cve_count(sid), row.cves);
  EXPECT_EQ(static_cast<int>(cat().features_of(sid).size()), row.features);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2Spec,
    ::testing::Values(Table2Row{"H-C", 54, 7061, 0.331, 15},
                      Table2Row{"SVG", 138, 1554, 0.868, 14},
                      Table2Row{"WEBGL", 136, 913, 0.607, 13},
                      Table2Row{"H-WW", 2, 952, 0.599, 11},
                      Table2Row{"HTML5", 69, 7077, 0.262, 10},
                      Table2Row{"WEBA", 52, 157, 0.811, 10},
                      Table2Row{"WRTC", 28, 30, 0.292, 8},
                      Table2Row{"AJAX", 13, 7957, 0.139, 8},
                      Table2Row{"DOM", 36, 9088, 0.020, 4},
                      Table2Row{"IDB", 48, 302, 0.563, 3},
                      Table2Row{"BE", 1, 2373, 0.836, 2},
                      Table2Row{"WCR", 14, 7113, 0.678, 2},
                      Table2Row{"HRT", 1, 5769, 0.502, 1},
                      Table2Row{"V", 1, 1, 0.0, 1},
                      Table2Row{"DOM1", 47, 9139, 0.018, 0},
                      Table2Row{"HTML", 195, 8980, 0.043, 0},
                      Table2Row{"PT2", 1, 1728, 0.937, 0},
                      Table2Row{"SLC", 6, 8674, 0.077, 0},
                      Table2Row{"TC", 1, 3568, 0.769, 0},
                      Table2Row{"NS", 65, 8669, 0.245, 0}));

// ----------------------------------------------------------- features ----

TEST(CatalogFeatures, PinnedPaperFeaturesExist) {
  for (const char* name :
       {"Document.prototype.createElement", "Node.prototype.insertBefore",
        "Node.prototype.cloneNode", "XMLHttpRequest.prototype.open",
        "Document.prototype.querySelectorAll", "Navigator.prototype.vibrate",
        "PluginArray.prototype.refresh",
        "SVGTextContentElement.prototype.getComputedTextLength",
        "Crypto.prototype.getRandomValues", "Navigator.prototype.sendBeacon",
        "Window.prototype.requestAnimationFrame",
        "Performance.prototype.now"}) {
    EXPECT_NE(cat().find_feature(name), nullptr) << name;
  }
  EXPECT_EQ(cat().find_feature("No.prototype.suchFeature"), nullptr);
}

TEST(CatalogFeatures, TopFeatureCarriesTheStandardPopularity) {
  const Feature* open = cat().find_feature("XMLHttpRequest.prototype.open");
  ASSERT_NE(open, nullptr);
  EXPECT_EQ(open->rank_in_standard, 0);
  // The paper: XMLHttpRequest.prototype.open used on 7,955 sites and the
  // AJAX standard on 7,957 — the flagship feature carries the standard.
  EXPECT_EQ(open->target_sites, 7957);
  EXPECT_FALSE(open->blocked_only);
}

TEST(CatalogFeatures, RanksAreDenseAndOrdered) {
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const auto& fids = cat().features_of(static_cast<StandardId>(s));
    for (std::size_t i = 0; i < fids.size(); ++i) {
      EXPECT_EQ(cat().feature(fids[i]).rank_in_standard,
                static_cast<int>(i));
      EXPECT_EQ(cat().feature(fids[i]).standard, static_cast<StandardId>(s));
    }
  }
}

TEST(CatalogFeatures, TargetsDecayWithRank) {
  const StandardId svg = cat().standard_by_abbreviation("SVG");
  const auto& fids = cat().features_of(svg);
  int previous = cat().feature(fids[0]).target_sites;
  for (std::size_t i = 1; i < fids.size(); ++i) {
    const int target = cat().feature(fids[i]).target_sites;
    EXPECT_LE(target, previous);
    previous = target;
  }
}

TEST(CatalogFeatures, UsedFeatureCountsMatchSpecs) {
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const StandardSpec& spec = cat().standard(static_cast<StandardId>(s));
    int used = 0;
    for (const FeatureId fid : cat().features_of(static_cast<StandardId>(s))) {
      used += cat().feature(fid).target_sites > 0 ? 1 : 0;
    }
    EXPECT_EQ(used, spec.used_features) << spec.name;
  }
}

TEST(CatalogFeatures, PropertyFeaturesLiveOnSingletonsOnly) {
  for (const Feature& f : cat().features()) {
    if (f.kind == FeatureKind::kProperty) {
      EXPECT_TRUE(is_singleton_interface(f.interface_name))
          << f.full_name
          << " — the extension can only watch singleton objects (§4.2.2)";
    }
  }
}

TEST(CatalogFeatures, FullNamesAreUnique) {
  std::set<std::string> names;
  for (const Feature& f : cat().features()) {
    EXPECT_TRUE(names.insert(f.full_name).second) << f.full_name;
  }
}

// --------------------------------------------------------------- dates ---

TEST(CatalogDates, EveryFeatureMapsToARealRelease) {
  const auto& timeline = releases();
  std::set<std::string> versions;
  for (const Release& r : timeline) versions.insert(r.version);
  for (const Feature& f : cat().features()) {
    EXPECT_TRUE(versions.count(f.first_version)) << f.full_name;
    EXPECT_GE(f.implemented, timeline.front().date);
    EXPECT_LE(f.implemented, timeline.back().date);
  }
}

TEST(CatalogDates, FlagshipFeatureLandsWithTheStandard) {
  const StandardId ajax = cat().standard_by_abbreviation("AJAX");
  const Feature& open = cat().feature(cat().features_of(ajax)[0]);
  EXPECT_EQ(open.implemented.year(), 2004);  // Firefox 1.0 era
}

TEST(CatalogDates, StandardDateIsItsMostPopularFeatures) {
  // §3.4: the standard's implementation date is its most popular feature's.
  const StandardId slc = cat().standard_by_abbreviation("SLC");
  const Feature& qsa = cat().feature(cat().features_of(slc)[0]);
  EXPECT_EQ(cat().standard_implementation_date(slc).days_since_epoch(),
            qsa.implemented.days_since_epoch());
}

TEST(CatalogDates, UnusedStandardFallsBackToEarliestFeature) {
  const StandardId sd = cat().standard_by_abbreviation("SD");
  ASSERT_NE(sd, kInvalidStandard);
  support::Date earliest = cat().feature(cat().features_of(sd)[0]).implemented;
  for (const FeatureId fid : cat().features_of(sd)) {
    earliest = std::min(earliest, cat().feature(fid).implemented);
  }
  EXPECT_EQ(cat().standard_implementation_date(sd).days_since_epoch(),
            earliest.days_since_epoch());
}

// ------------------------------------------------------------- releases --

TEST(Releases, HistoricalShape) {
  const auto& timeline = releases();
  EXPECT_EQ(timeline.size(), static_cast<std::size_t>(kReleaseCount));
  EXPECT_EQ(timeline.front().version, "1.0");
  EXPECT_EQ(timeline.front().date.to_string(), "2004-11-09");
  EXPECT_EQ(timeline.back().version, "46.0.1");
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].date, timeline[i].date);
  }
}

TEST(Releases, LookupHelpers) {
  EXPECT_EQ(release_by_version("4.0").date.to_string(), "2011-03-22");
  EXPECT_THROW(release_by_version("99.0"), std::out_of_range);
  const Release& r = release_on_or_after(support::Date(2011, 3, 1));
  EXPECT_EQ(r.version, "4.0");
  // past the end clamps to the last release
  EXPECT_EQ(release_on_or_after(support::Date(2030, 1, 1)).version, "46.0.1");
}

// ----------------------------------------------------------------- CVEs --

TEST(Cves, FeedMatchesSection35) {
  const auto feed = generate_cve_feed(standard_specs());
  EXPECT_EQ(feed.size(), static_cast<std::size_t>(kCveCandidates));  // 470
  const auto firefox = firefox_cves(feed);
  EXPECT_EQ(firefox.size(), static_cast<std::size_t>(kCveFirefox));  // 456
  const auto attributed = attributed_cves(firefox);
  EXPECT_EQ(attributed.size(), 111u);  // sum of Table 2's CVE column
  for (const Cve& cve : attributed) {
    EXPECT_GE(cve.year, 2013);
    EXPECT_LE(cve.year, 2016);
    EXPECT_TRUE(cve.id.rfind("CVE-", 0) == 0) << cve.id;
  }
}

TEST(Cves, PerStandardCountsMatchTable2) {
  std::map<StandardId, int> counts;
  for (const Cve& cve : cat().cves()) {
    if (cve.standard != kInvalidStandard) ++counts[cve.standard];
  }
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const auto sid = static_cast<StandardId>(s);
    EXPECT_EQ(counts[sid], cat().standard(sid).cve_count)
        << cat().standard(sid).name;
  }
}

// ---------------------------------------------------------------- names --

TEST(Names, GlobalAccessPathsPointAtSingletons) {
  EXPECT_EQ(global_access_path("Navigator"), "navigator");
  EXPECT_EQ(global_access_path("SubtleCrypto"), "crypto.subtle");
  EXPECT_EQ(global_access_path("CanvasGradient"), "");
}

TEST(Names, MembersForIsDeterministicAndSized) {
  const StandardSpec& svg =
      cat().standard(cat().standard_by_abbreviation("SVG"));
  const auto a = members_for(svg);
  const auto b = members_for(svg);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(svg.feature_count));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].interface_name, b[i].interface_name);
    EXPECT_EQ(a[i].member_name, b[i].member_name);
  }
}

// --------------------------------------------------------------- growth --

TEST(Growth, StandardsAccumulateOverTime) {
  int previous = 0;
  for (const auto& [year, count] : standards_by_year(cat())) {
    EXPECT_GE(count, previous) << year;
    previous = count;
  }
  EXPECT_EQ(standards_available_by(cat(), 2016.99), 75);
  EXPECT_GT(standards_available_by(cat(), 2004.99), 0);
}

TEST(Growth, ChromeLocDropsAtBlinkFork) {
  for (const auto& series : browser_loc_history()) {
    if (series.browser != "Chrome") continue;
    double before = 0, after = 0;
    for (const auto& sample : series.samples) {
      if (sample.year == 2013.25) before = sample.million_loc;
      if (sample.year == 2013.75) after = sample.million_loc;
    }
    EXPECT_GT(before - after, 5.0);  // ~8.8M lines removed [34]
  }
}

}  // namespace
}  // namespace fu::catalog
