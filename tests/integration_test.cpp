// End-to-end pipeline tests: catalog -> synthetic web -> survey -> analysis
// through the public facade, plus cross-module invariants that only hold if
// every stage cooperates.
#include <cstdlib>

#include <gtest/gtest.h>

#include "support/stats.h"
#include "test_util.h"

namespace fu {
namespace {

TEST(Facade, LazyPipelineBuildsEachStage) {
  ReproductionConfig config;
  config.sites = 40;
  config.passes = 2;
  config.single_blocker_configs = false;
  Reproduction repro(config);

  EXPECT_EQ(repro.catalog().features().size(), 1392u);
  EXPECT_EQ(repro.web().sites().size(), 40u);
  const crawler::SurveyResults& survey = repro.survey();
  EXPECT_EQ(survey.passes, 2);
  EXPECT_FALSE(survey.has_ad_only);
  EXPECT_GT(repro.analysis().measured_sites(), 30);
}

TEST(Facade, EnvOverridesAreRead) {
  ::setenv("FU_SITES", "77", 1);
  ::setenv("FU_PASSES", "4", 1);
  ::setenv("FU_FIG7", "0", 1);
  const ReproductionConfig config = ReproductionConfig::from_env();
  EXPECT_EQ(config.sites, 77);
  EXPECT_EQ(config.passes, 4);
  EXPECT_FALSE(config.single_blocker_configs);
  ::unsetenv("FU_SITES");
  ::unsetenv("FU_PASSES");
  ::unsetenv("FU_FIG7");
  const ReproductionConfig defaults = ReproductionConfig::from_env();
  EXPECT_EQ(defaults.sites, 10000);
  EXPECT_EQ(defaults.passes, 5);
}

TEST(Facade, SurveyCacheRoundTrips) {
  const std::string dir = ::testing::TempDir() + "/fu_cache_test";
  ::setenv("FU_CACHE_DIR", dir.c_str(), 1);

  ReproductionConfig config;
  config.sites = 25;
  config.passes = 2;
  config.seed = 777;
  config.single_blocker_configs = false;

  Reproduction first(config);
  const std::uint64_t invocations = first.survey().total_invocations();

  // second instance must load from the cache and agree exactly
  Reproduction second(config);
  EXPECT_EQ(second.survey().total_invocations(), invocations);
  EXPECT_EQ(second.survey().sites_measured(), first.survey().sites_measured());
  ::unsetenv("FU_CACHE_DIR");
}

TEST(Pipeline, SurveyIsDeterministicEndToEnd) {
  ReproductionConfig config;
  config.sites = 30;
  config.passes = 2;
  config.seed = 4242;
  config.single_blocker_configs = false;

  ::setenv("FU_CACHE", "0", 1);
  Reproduction a(config);
  Reproduction b(config);
  EXPECT_EQ(a.survey().total_invocations(), b.survey().total_invocations());
  for (std::size_t i = 0; i < a.survey().sites.size(); ++i) {
    EXPECT_EQ(a.survey().sites[i].features[0], b.survey().sites[i].features[0])
        << "site " << i;
  }
  ::unsetenv("FU_CACHE");
}

// ------------------------------------------------ paper-shape invariants --

TEST(PaperShape, MostSitesAreMeasured) {
  const auto& survey = test::small_survey();
  const double measured_fraction =
      static_cast<double>(survey.sites_measured()) /
      static_cast<double>(survey.sites.size());
  // paper: 9,733 of 10,000 (§4.3.3)
  EXPECT_GT(measured_fraction, 0.90);
  EXPECT_LT(measured_fraction, 1.0 + 1e-9);
}

TEST(PaperShape, AboutHalfOfFeaturesAreNeverUsed) {
  // At 120 sites the long tail can't fully materialize, so the bound is
  // loose and one-sided: at least the calibration's never-used mass.
  const auto h = test::small_analysis().headline();
  EXPECT_GT(h.features_never_used, 600);
  EXPECT_LT(h.features_never_used, 1200);
}

TEST(PaperShape, BlockedFeatureMassIsSubstantial) {
  const auto h = test::small_analysis().headline();
  // §5.3: ~10% of features have block rates over 90%
  EXPECT_GT(h.features_blocked_90, 50);
  // §5.3: >83% of features land under 1% with blockers on
  EXPECT_GT(h.features_under_1pct_blocking, 1000);
}

TEST(PaperShape, BeaconIsHeavilyBlocked) {
  const auto& an = test::small_analysis();
  const auto be = test::shared_catalog().standard_by_abbreviation("BE");
  if (an.standard_sites(be, analysis::BrowsingConfig::kDefault) >= 10) {
    EXPECT_GT(an.standard_block_rate(be), 0.6);  // paper: 83.6%
  }
}

TEST(PaperShape, AmbientLightIsRareAndFullyBlocked) {
  const auto& an = test::small_analysis();
  const auto als = test::shared_catalog().standard_by_abbreviation("ALS");
  const int sites = an.standard_sites(als, analysis::BrowsingConfig::kDefault);
  EXPECT_LE(sites, 3);  // ~14 of 10k in the paper
  if (sites > 0) {
    EXPECT_DOUBLE_EQ(an.standard_block_rate(als), 1.0);  // §5.4
  }
}

TEST(PaperShape, OldDoesNotImplyPopular) {
  // §5.6: AJAX (2004) is extremely popular, H-P (2005) is nearly dead,
  // SLC (2013) is very popular — age alone doesn't predict usage.
  const auto& an = test::small_analysis();
  const auto& cat = test::shared_catalog();
  const double ajax =
      an.standard_site_fraction(cat.standard_by_abbreviation("AJAX"));
  const double hp =
      an.standard_site_fraction(cat.standard_by_abbreviation("H-P"));
  const double slc =
      an.standard_site_fraction(cat.standard_by_abbreviation("SLC"));
  EXPECT_GT(ajax, 0.6);
  EXPECT_LT(hp, 0.1);
  EXPECT_GT(slc, 0.6);
}

TEST(PaperShape, VisitWeightedPopularityTracksSitePopularity) {
  // Figure 5: standards cluster around the x=y line.
  const auto& an = test::small_analysis();
  std::vector<double> site_frac, visit_frac;
  for (std::size_t s = 0; s < test::shared_catalog().standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    if (an.standard_sites(sid, analysis::BrowsingConfig::kDefault) == 0) {
      continue;
    }
    site_frac.push_back(an.standard_site_fraction(sid));
    visit_frac.push_back(an.standard_visit_fraction(sid));
  }
  EXPECT_GT(support::pearson(site_frac, visit_frac), 0.9);
}

TEST(PaperShape, OpenWebOnlyRecordsCalibratedFeatures) {
  // Every feature the open-web survey observes must be one the calibration
  // table says is used somewhere (target > 0). Never-used features can only
  // exist behind logins, which the default crawl cannot reach — if this
  // fails, either the generator leaked a feature or the instrumentation
  // miscounted.
  const auto& cat = test::shared_catalog();
  for (const auto& outcome : test::small_survey().sites) {
    for (const auto& bits : outcome.features) {
      for (std::size_t f = 0; f < bits.size(); ++f) {
        if (!bits.test(f)) continue;
        EXPECT_GT(cat.feature(static_cast<catalog::FeatureId>(f)).target_sites,
                  0)
            << cat.feature(static_cast<catalog::FeatureId>(f)).full_name;
      }
    }
  }
}

TEST(PaperShape, BlockedOnlyFeaturesVanishUnderBlocking) {
  // Features calibrated as ad/tracker-exclusive must have high measured
  // block rates whenever they were seen at all by default.
  const auto& cat = test::shared_catalog();
  const auto& an = test::small_analysis();
  int checked = 0;
  for (const catalog::Feature& f : cat.features()) {
    if (!f.blocked_only) continue;
    const int by_default =
        an.feature_sites(f.id, analysis::BrowsingConfig::kDefault);
    if (by_default < 5) continue;  // too rare to judge at this scale
    EXPECT_GT(an.feature_block_rate(f.id), 0.5) << f.full_name;
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

TEST(PaperShape, CveProneStandardsCanBeUnpopular) {
  // §5.8: Web Audio — <2% of sites, 10 CVEs.
  const auto& cat = test::shared_catalog();
  const auto weba = cat.standard_by_abbreviation("WEBA");
  EXPECT_EQ(cat.cve_count(weba), 10);
  EXPECT_LT(test::small_analysis().standard_site_fraction(weba), 0.05);
}

}  // namespace
}  // namespace fu
