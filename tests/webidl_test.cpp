#include <set>
#include <string>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "test_util.h"
#include "webidl/lexer.h"
#include "webidl/parser.h"
#include "webidl/writer.h"

namespace fu::webidl {
namespace {

// ---------------------------------------------------------------- lexer --

TEST(WebIdlLexer, BasicTokens) {
  const auto toks = lex("interface Foo { void bar(long x); };");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "interface");
  EXPECT_EQ(toks.back().kind, TokenKind::kEof);
}

TEST(WebIdlLexer, SkipsComments) {
  const auto toks = lex("// line\n/* block\nmulti */ interface");
  EXPECT_EQ(toks.size(), 2u);  // "interface" + eof
  EXPECT_EQ(toks[0].text, "interface");
}

TEST(WebIdlLexer, NumbersAndStrings) {
  const auto toks = lex("1 0x1F 2.5 1e-3 \"text\"");
  EXPECT_EQ(toks[0].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[1].kind, TokenKind::kInteger);
  EXPECT_EQ(toks[1].text, "0x1F");
  EXPECT_EQ(toks[2].kind, TokenKind::kFloat);
  EXPECT_EQ(toks[3].kind, TokenKind::kFloat);
  EXPECT_EQ(toks[4].kind, TokenKind::kString);
  EXPECT_EQ(toks[4].text, "text");
}

TEST(WebIdlLexer, EllipsisToken) {
  const auto toks = lex("any... rest");
  EXPECT_EQ(toks[1].text, "...");
}

TEST(WebIdlLexer, ThrowsOnUnterminatedConstructs) {
  EXPECT_THROW(lex("/* never closed"), LexError);
  EXPECT_THROW(lex("\"never closed"), LexError);
  EXPECT_THROW(lex("interface @"), LexError);
}

TEST(WebIdlLexer, TracksLineNumbers) {
  try {
    lex("interface A;\n\n\"oops");
    FAIL() << "expected LexError";
  } catch (const LexError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// --------------------------------------------------------------- parser --

TEST(WebIdlParser, SimpleInterface) {
  const Document doc = parse(R"(
    interface Node {
      Node insertBefore(Node node, Node child);
      readonly attribute DOMString nodeName;
      attribute DOMString textContent;
    };
  )");
  ASSERT_EQ(doc.interfaces.size(), 1u);
  const Interface& node = doc.interfaces[0];
  EXPECT_EQ(node.name, "Node");
  ASSERT_EQ(node.members.size(), 3u);
  EXPECT_EQ(node.members[0].kind, MemberKind::kOperation);
  EXPECT_EQ(node.members[0].name, "insertBefore");
  ASSERT_EQ(node.members[0].arguments.size(), 2u);
  EXPECT_EQ(node.members[0].arguments[0].type, "Node");
  EXPECT_EQ(node.members[1].kind, MemberKind::kReadonlyAttribute);
  EXPECT_EQ(node.members[2].kind, MemberKind::kAttribute);
}

TEST(WebIdlParser, InheritanceAndPartial) {
  const Document doc = parse(R"(
    interface Element : Node { void remove(); };
    partial interface Element { void after(); };
  )");
  ASSERT_EQ(doc.interfaces.size(), 2u);
  EXPECT_EQ(*doc.interfaces[0].parent, "Node");
  EXPECT_TRUE(doc.interfaces[1].partial);

  const Document merged = merge_partials(doc);
  ASSERT_EQ(merged.interfaces.size(), 1u);
  EXPECT_EQ(merged.interfaces[0].members.size(), 2u);
  EXPECT_EQ(*merged.interfaces[0].parent, "Node");
}

TEST(WebIdlParser, StaticAndConstMembers) {
  const Document doc = parse(R"(
    interface MediaSource {
      static boolean isTypeSupported(DOMString type);
      const unsigned short CLOSED = 0;
    };
  )");
  const Interface& iface = doc.interfaces[0];
  EXPECT_EQ(iface.members[0].kind, MemberKind::kStaticOperation);
  EXPECT_EQ(iface.members[1].kind, MemberKind::kConstant);
  EXPECT_EQ(iface.members[1].return_type, "unsigned short");
}

TEST(WebIdlParser, ComplexTypes) {
  const Document doc = parse(R"(
    interface Fancy {
      Promise<sequence<DOMString>> list(optional record<DOMString, any> init);
      (Node or DOMString)? pick(long... indexes);
    };
  )");
  const Interface& iface = doc.interfaces[0];
  EXPECT_EQ(iface.members[0].return_type, "Promise<sequence<DOMString>>");
  EXPECT_TRUE(iface.members[0].arguments[0].optional);
  EXPECT_EQ(iface.members[1].return_type, "(Node or DOMString)?");
  EXPECT_TRUE(iface.members[1].arguments[0].variadic);
}

TEST(WebIdlParser, ExtendedAttributesAreRecorded) {
  const Document doc = parse(R"(
    [Constructor(DOMString url), Exposed=Window]
    interface WebSocket {
      [Throws] void send(DOMString data);
    };
  )");
  const Interface& iface = doc.interfaces[0];
  ASSERT_EQ(iface.extended_attributes.size(), 2u);
  EXPECT_EQ(iface.members[0].extended_attributes.size(), 1u);
  EXPECT_EQ(iface.members[0].extended_attributes[0], "Throws");
}

TEST(WebIdlParser, EnumDictionaryTypedefCallback) {
  const Document doc = parse(R"(
    enum BinaryType { "blob", "arraybuffer" };
    dictionary EventInit { boolean bubbles = false; required long when; };
    typedef (DOMString or long) Key;
    callback EventHandler = void (Event event);
    callback interface Listener { void handleEvent(Event e); };
  )");
  ASSERT_EQ(doc.enums.size(), 1u);
  EXPECT_EQ(doc.enums[0].values.size(), 2u);
  ASSERT_EQ(doc.dictionaries.size(), 1u);
  EXPECT_FALSE(doc.dictionaries[0].members[0].required);
  EXPECT_TRUE(doc.dictionaries[0].members[1].required);
  ASSERT_EQ(doc.typedefs.size(), 2u);  // typedef + callback
  ASSERT_EQ(doc.interfaces.size(), 1u);
  EXPECT_EQ(doc.interfaces[0].name, "Listener");
}

TEST(WebIdlParser, SpecialOperationsAreSkippedWhenUnnamed) {
  const Document doc = parse(R"(
    interface Bag {
      getter any (unsigned long index);
      getter any item(unsigned long index);
      iterable<DOMString>;
      stringifier;
    };
  )");
  const auto features = extract_features(doc);
  // only the named getter and the stringifier-generated toString survive
  ASSERT_EQ(features.size(), 2u);
  EXPECT_EQ(features[0].member_name, "item");
  EXPECT_EQ(features[1].member_name, "toString");
}

TEST(WebIdlParser, NamespaceMembersAreStatic) {
  const Document doc = parse(R"(
    namespace CSS { boolean supports(DOMString cond); };
  )");
  ASSERT_EQ(doc.interfaces.size(), 1u);
  EXPECT_TRUE(doc.interfaces[0].is_namespace);
  EXPECT_EQ(doc.interfaces[0].members[0].kind, MemberKind::kStaticOperation);
}

TEST(WebIdlParser, ThrowsOnMalformedInput) {
  EXPECT_THROW(parse("interface { };"), ParseError);
  EXPECT_THROW(parse("interface A { void f( };"), ParseError);
  EXPECT_THROW(parse("bogus A {};"), ParseError);
  EXPECT_THROW(parse("interface A { void f(); }"), ParseError);  // missing ;
}

// ------------------------------------------------------------- features --

TEST(FeatureExtraction, NamesFollowThePaperConvention) {
  const Document doc = parse(R"(
    interface Node {
      Node insertBefore(Node n, Node c);
      attribute DOMString nodeValue;
      static void adopt(Node n);
      const short KIND = 1;
    };
  )");
  const auto features = extract_features(doc);
  ASSERT_EQ(features.size(), 3u);  // constant skipped
  EXPECT_EQ(features[0].full_name, "Node.prototype.insertBefore");
  EXPECT_EQ(features[1].full_name, "Node.prototype.nodeValue");
  EXPECT_EQ(features[2].full_name, "Node.adopt");
}

// --------------------------------------------------------------- writer --

TEST(WebIdlWriter, RoundTripsSyntheticInterface) {
  Document doc;
  Interface iface;
  iface.name = "Probe";
  Member m;
  m.kind = MemberKind::kOperation;
  m.return_type = "any";
  m.name = "run";
  m.arguments.push_back({"DOMString", "label", true, false});
  iface.members.push_back(m);
  Member attr;
  attr.kind = MemberKind::kAttribute;
  attr.return_type = "DOMString";
  attr.name = "mode";
  iface.members.push_back(attr);
  doc.interfaces.push_back(iface);

  const Document reparsed = parse(write_document(doc));
  ASSERT_EQ(reparsed.interfaces.size(), 1u);
  EXPECT_EQ(reparsed.interfaces[0].name, "Probe");
  ASSERT_EQ(reparsed.interfaces[0].members.size(), 2u);
  EXPECT_TRUE(reparsed.interfaces[0].members[0].arguments[0].optional);
}

// The catalog's generated corpus must round-trip exactly: parse(corpus[i])
// yields the features of standard i with identical names.
class CorpusRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CorpusRoundTrip, ParsesToStandardFeatures) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  const int sid = GetParam();
  const Document doc = merge_partials(parse(cat.webidl_corpus()[sid]));
  const auto extracted = extract_features(doc);
  const auto& expected = cat.features_of(static_cast<catalog::StandardId>(sid));
  ASSERT_EQ(extracted.size(), expected.size());
  // same names, set-wise
  std::set<std::string> extracted_names, expected_names;
  for (const auto& f : extracted) extracted_names.insert(f.full_name);
  for (const auto fid : expected) {
    expected_names.insert(cat.feature(fid).full_name);
  }
  EXPECT_EQ(extracted_names, expected_names);
}

INSTANTIATE_TEST_SUITE_P(AllStandards, CorpusRoundTrip,
                         ::testing::Range(0, catalog::kStandardCount));

}  // namespace
}  // namespace fu::webidl
