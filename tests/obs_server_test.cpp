// Tests for the live survey endpoint: the delta ring, the loopback HTTP
// server and its five routes, stall-driven health flips, and the
// reader-vs-recorder race the whole design hinges on (run under TSan in CI).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/delta.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/server.h"
#include "sched/progress.h"

namespace fu::obs {
namespace {

// ---------------------------------------------------------------------------
// DeltaRing

TEST(DeltaRing, RecordDiffsAgainstPrimedBaseline) {
  Registry registry;
  Counter& counter = registry.counter("sites.done");
  Gauge& gauge = registry.gauge("queue.depth");
  Histogram& hist = registry.histogram("visit.us", {10, 100});

  counter.add(5);
  DeltaRing ring;
  ring.prime(registry.snapshot(), 0.0);

  counter.add(3);
  gauge.set(7);
  hist.record(50);
  hist.record(5000);  // overflow bucket

  const std::uint64_t seq = ring.record(registry.snapshot(), 1.0);
  EXPECT_EQ(seq, 1u);
  EXPECT_EQ(ring.latest_seq(), 1u);

  const std::vector<DeltaInterval> deltas = ring.since(0);
  ASSERT_EQ(deltas.size(), 1u);
  const DeltaInterval& d = deltas[0];
  EXPECT_DOUBLE_EQ(d.t0, 0.0);
  EXPECT_DOUBLE_EQ(d.t1, 1.0);

  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].first, "sites.done");
  EXPECT_EQ(d.counters[0].second, 3u);  // delta, not the total of 8

  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_EQ(d.gauges[0].value, 7);  // gauges report levels

  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].count, 2u);
  ASSERT_EQ(d.histograms[0].counts.size(), 3u);  // 2 bounds + overflow
  EXPECT_EQ(d.histograms[0].counts[1], 1u);
  EXPECT_EQ(d.histograms[0].counts[2], 1u);
}

TEST(DeltaRing, IdleIntervalIsEmptyDiff) {
  Registry registry;
  registry.counter("x").add(4);
  DeltaRing ring;
  ring.prime(registry.snapshot(), 0.0);
  ring.record(registry.snapshot(), 1.0);

  const std::vector<DeltaInterval> deltas = ring.since(0);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_TRUE(deltas[0].counters.empty());
  EXPECT_TRUE(deltas[0].histograms.empty());
}

TEST(DeltaRing, SinceReturnsOnlyNewerIntervals) {
  Registry registry;
  Counter& counter = registry.counter("c");
  DeltaRing ring;
  ring.prime(registry.snapshot(), 0.0);
  for (int i = 1; i <= 5; ++i) {
    counter.add();
    ring.record(registry.snapshot(), static_cast<double>(i));
  }
  EXPECT_EQ(ring.latest_seq(), 5u);

  const std::vector<DeltaInterval> tail = ring.since(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
  EXPECT_TRUE(ring.since(5).empty());
  EXPECT_TRUE(ring.since(99).empty());
}

TEST(DeltaRing, EvictsOldestPastCapacity) {
  Registry registry;
  Counter& counter = registry.counter("c");
  DeltaRing ring(3);
  ring.prime(registry.snapshot(), 0.0);
  for (int i = 1; i <= 10; ++i) {
    counter.add();
    ring.record(registry.snapshot(), static_cast<double>(i));
  }
  const std::vector<DeltaInterval> all = ring.since(0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.front().seq, 8u);
  EXPECT_EQ(all.back().seq, 10u);
}

TEST(DeltaRing, FirstRecordSelfPrimes) {
  Registry registry;
  registry.counter("c").add(100);
  DeltaRing ring;
  // No prime(): the first record() establishes the baseline and reports no
  // interval (seq 0), so pre-serving totals never appear as a burst.
  EXPECT_EQ(ring.record(registry.snapshot(), 5.0), 0u);
  registry.counter("c").add(1);
  EXPECT_EQ(ring.record(registry.snapshot(), 6.0), 1u);
  const std::vector<DeltaInterval> deltas = ring.since(0);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].counters[0].second, 1u);
}

TEST(DeltaRing, ToJsonRoundTripsThroughParser) {
  Registry registry;
  registry.counter("sites.done").add(2);
  registry.gauge("depth").set(3);
  Histogram& hist = registry.histogram("stage.us", {10, 100});
  DeltaRing ring;
  ring.prime(registry.snapshot(), 0.0);
  hist.record(42);
  registry.counter("sites.done").add(4);
  ring.record(registry.snapshot(), 1.0);

  const std::string json = ring.to_json(0);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(json, doc, &error)) << error << "\n" << json;
  EXPECT_EQ(doc.number_or("latest_seq", -1), 1);
  const JsonValue* deltas = doc.find("deltas");
  ASSERT_NE(deltas, nullptr);
  ASSERT_TRUE(deltas->is_array());
  ASSERT_EQ(deltas->array.size(), 1u);
  const JsonValue& d = deltas->array[0];
  EXPECT_EQ(d.number_or("seq", -1), 1);
  const JsonValue* counters = d.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("sites.done", -1), 4);

  // The histogram delta uses the same explicit-"+inf" form as metrics.json,
  // so the shared reader understands both endpoints.
  const JsonValue* hists = d.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* stage = hists->find("stage.us");
  ASSERT_NE(stage, nullptr);
  Histogram::Snapshot parsed;
  ASSERT_TRUE(histogram_from_json(*stage, parsed));
  EXPECT_EQ(parsed.count, 1u);
  ASSERT_EQ(parsed.bounds.size(), 2u);
  EXPECT_EQ(parsed.counts.size(), 3u);
}

TEST(DeltaRing, ToJsonReportsTruncationWhenSinceFellOffTheRing) {
  Registry registry;
  Counter& counter = registry.counter("c");
  DeltaRing ring(3);
  ring.prime(registry.snapshot(), 0.0);
  for (int i = 1; i <= 10; ++i) {
    counter.add();
    ring.record(registry.snapshot(), static_cast<double>(i));
  }
  // Ring holds seqs 8..10; a client at since=2 lost intervals 3..7.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(ring.to_json(2), doc, &error)) << error;
  const JsonValue* truncated = doc.find("truncated");
  ASSERT_NE(truncated, nullptr);
  EXPECT_TRUE(truncated->type == JsonValue::Type::kBool && truncated->boolean);
  EXPECT_EQ(doc.number_or("oldest_seq", -1), 8);
  const JsonValue* deltas = doc.find("deltas");
  ASSERT_NE(deltas, nullptr);
  EXPECT_EQ(deltas->array.size(), 3u);

  // A caught-up client (or one whose `since` is still retained) sees no
  // truncation marker at all.
  ASSERT_TRUE(json_parse(ring.to_json(7), doc, &error)) << error;
  EXPECT_EQ(doc.find("truncated"), nullptr);
  ASSERT_TRUE(json_parse(ring.to_json(10), doc, &error)) << error;
  EXPECT_EQ(doc.find("truncated"), nullptr);
}

TEST(DeltaRing, ToJsonOnEmptyRingIsNotTruncated) {
  DeltaRing ring;
  JsonValue doc;
  std::string error;
  // Nothing ever recorded: nothing was lost, whatever `since` says.
  ASSERT_TRUE(json_parse(ring.to_json(0), doc, &error)) << error;
  EXPECT_EQ(doc.find("truncated"), nullptr);
  ASSERT_TRUE(json_parse(ring.to_json(42), doc, &error)) << error;
  EXPECT_EQ(doc.find("truncated"), nullptr);
}

TEST(DeltaPercentile, InterpolatesWithinBuckets) {
  const std::vector<std::uint64_t> bounds = {10, 20, 40};
  // 10 samples in (10,20], nothing elsewhere.
  const std::vector<std::uint64_t> counts = {0, 10, 0, 0};
  const double p50 = delta_percentile(bounds, counts, 50);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // Overflow-bucket mass lands between the last bound and 2x last bound.
  const std::vector<std::uint64_t> over = {0, 0, 0, 4};
  const double p95 = delta_percentile(bounds, over, 95);
  EXPECT_GT(p95, 40.0);
  EXPECT_LE(p95, 80.0);
  // Empty delta: no estimate.
  EXPECT_EQ(delta_percentile(bounds, {0, 0, 0, 0}, 50), 0.0);
}

// ---------------------------------------------------------------------------
// Router edge cases

// A handler that answers with a fixed tag plus any captured params, so the
// tests can see exactly which route won and what it captured.
Router::Handler tag(const std::string& name) {
  return [name](HttpRequest& request) {
    std::string body = name;
    for (const std::string& param : request.params) body += "|" + param;
    return text_response(200, std::move(body));
  };
}

HttpResponse route(const Router& router, const std::string& method,
                   const std::string& path) {
  HttpRequest request;
  request.method = method;
  request.path = path;
  return router.dispatch(request);
}

TEST(Router, TrailingSlashIsInsignificant) {
  Router router;
  router.handle("GET", "/surveys", tag("list"));
  router.handle("GET", "/surveys/<id>", tag("one"));
  EXPECT_EQ(route(router, "GET", "/surveys").body, "list");
  EXPECT_EQ(route(router, "GET", "/surveys/").body, "list");
  EXPECT_EQ(route(router, "GET", "/surveys/7").body, "one|7");
  EXPECT_EQ(route(router, "GET", "/surveys/7/").body, "one|7");
  // The bare root still routes (trailing-slash trim never eats the whole
  // path).
  Router root;
  root.handle("GET", "/", tag("root"));
  EXPECT_EQ(route(root, "GET", "/").body, "root");
}

TEST(Router, DuplicateRegistrationEarlierWins) {
  Router router;
  router.handle("GET", "/surveys", tag("first"));
  router.handle("GET", "/surveys", tag("second"));
  EXPECT_EQ(route(router, "GET", "/surveys").body, "first");
}

TEST(Router, ParamCapturesPercentEncodedVerbatimButNeverEmpty) {
  Router router;
  router.handle("GET", "/surveys/<id>/tables", tag("tables"));
  router.handle("GET", "/surveys/<id>", tag("one"));
  // The router does not percent-decode: the handler sees the raw segment
  // (daemon ids are digits-only, so decoding is the handler's concern).
  EXPECT_EQ(route(router, "GET", "/surveys/a%2Fb").body, "one|a%2Fb");
  EXPECT_EQ(route(router, "GET", "/surveys/%31%32/tables").body,
            "tables|%31%32");
  // An empty segment never satisfies a wildcard — "/surveys//tables" is not
  // "/surveys/<id>/tables" for any id.
  EXPECT_EQ(route(router, "GET", "/surveys//tables").status, 404);
}

TEST(Router, MostSpecificFirstOrderingUnderWildcards) {
  Router router;  // registered most specific first, as the daemon does
  router.handle("GET", "/surveys/<id>/tables", tag("tables"));
  router.handle("GET", "/surveys/<id>", tag("one"));
  router.handle("GET", "/surveys", tag("list"));
  EXPECT_EQ(route(router, "GET", "/surveys/9/tables").body, "tables|9");
  EXPECT_EQ(route(router, "GET", "/surveys/9").body, "one|9");
  EXPECT_EQ(route(router, "GET", "/surveys").body, "list");
  // A literal segment registered before the wildcard shadows that one value
  // only.
  Router shadowing;
  shadowing.handle("GET", "/surveys/latest", tag("latest"));
  shadowing.handle("GET", "/surveys/<id>", tag("one"));
  EXPECT_EQ(route(shadowing, "GET", "/surveys/latest").body, "latest");
  EXPECT_EQ(route(shadowing, "GET", "/surveys/3").body, "one|3");
  // Registered the other way round, the wildcard swallows the literal —
  // earlier-wins is the whole ordering contract.
  Router swallowed;
  swallowed.handle("GET", "/surveys/<id>", tag("one"));
  swallowed.handle("GET", "/surveys/latest", tag("latest"));
  EXPECT_EQ(route(swallowed, "GET", "/surveys/latest").body, "one|latest");
}

TEST(Router, MethodMismatchIs405WithAllowHint) {
  Router router;
  router.handle("GET", "/surveys", tag("list"));
  router.handle("POST", "/surveys", tag("submit"));
  router.handle("GET", "/surveys/<id>", tag("one"));
  const HttpResponse response = route(router, "DELETE", "/surveys");
  EXPECT_EQ(response.status, 405);
  EXPECT_NE(response.body.find("GET"), std::string::npos) << response.body;
  EXPECT_NE(response.body.find("POST"), std::string::npos) << response.body;
  EXPECT_EQ(route(router, "POST", "/surveys/5").status, 405);
}

// ---------------------------------------------------------------------------
// Server

// Binds an ephemeral-port server over its own registry; most tests want one.
struct TestServer {
  explicit TestServer(Registry& registry,
                      std::function<std::string()> progress = {},
                      std::function<HealthStatus()> health = {}) {
    ServerOptions options;
    options.port = 0;
    options.registry = &registry;
    options.delta_interval_seconds = 0.05;
    options.progress_json = std::move(progress);
    options.health = std::move(health);
    server = std::make_unique<Server>(std::move(options));
  }
  std::unique_ptr<Server> server;
};

std::string fetch_ok(int port, const std::string& path) {
  int status = 0;
  std::string body, error;
  EXPECT_TRUE(http_get("127.0.0.1", port, path, status, body, &error))
      << error;
  EXPECT_EQ(status, 200) << path << ": " << body;
  return body;
}

TEST(Server, BindsEphemeralPortAndServesMetricsJson) {
  Registry registry;
  registry.counter("sites.done").add(12);
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();
  EXPECT_GT(ts.server->port(), 0);

  const std::string body = fetch_ok(ts.server->port(), "/metrics.json");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(body, doc, &error)) << error;
  const JsonValue* counters = doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("sites.done", -1), 12);
  EXPECT_GE(ts.server->requests_served(), 1u);
}

TEST(Server, ServesPrometheusText) {
  Registry registry;
  registry.counter("sites.done").add(3);
  registry.histogram("crawler.visit_us", {10, 100}).record(42);
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();

  const std::string body = fetch_ok(ts.server->port(), "/metrics");
  EXPECT_NE(body.find("fu_sites_done_total 3"), std::string::npos) << body;
  EXPECT_NE(body.find("fu_crawler_visit_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE fu_crawler_visit_us histogram"),
            std::string::npos)
      << body;
}

TEST(Server, ProgressEndpointUsesInjectedCallback) {
  Registry registry;
  TestServer ts(registry, [] { return std::string("{\"done\": 7}\n"); });
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();
  const std::string body = fetch_ok(ts.server->port(), "/progress.json");
  JsonValue doc;
  ASSERT_TRUE(json_parse(body, doc, nullptr));
  EXPECT_EQ(doc.number_or("done", -1), 7);
}

TEST(Server, ProgressEndpointIs404WithoutCallback) {
  Registry registry;
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", ts.server->port(), "/progress.json", status, body));
  EXPECT_EQ(status, 404);
}

TEST(Server, DeltasSinceFiltersOldIntervals) {
  Registry registry;
  Counter& counter = registry.counter("c");
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();

  // Let the server thread tick a few intervals with traffic in them.
  for (int i = 0; i < 4; ++i) {
    counter.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }

  JsonValue doc;
  ASSERT_TRUE(
      json_parse(fetch_ok(ts.server->port(), "/deltas.json"), doc, nullptr));
  const double latest = doc.number_or("latest_seq", 0);
  ASSERT_GE(latest, 2) << "server thread never ticked the delta ring";

  const std::uint64_t since = static_cast<std::uint64_t>(latest) - 1;
  JsonValue tail;
  ASSERT_TRUE(json_parse(
      fetch_ok(ts.server->port(),
               "/deltas.json?since=" + std::to_string(since)),
      tail, nullptr));
  const JsonValue* deltas = tail.find("deltas");
  ASSERT_NE(deltas, nullptr);
  ASSERT_TRUE(deltas->is_array());
  EXPECT_FALSE(deltas->array.empty());
  for (const JsonValue& d : deltas->array) {
    EXPECT_GT(d.number_or("seq", 0), static_cast<double>(since));
  }
}

TEST(Server, HealthzFlips503OnStall) {
  Registry registry;
  sched::ProgressMeter meter(10);
  meter.set_stall_window(0.05);  // 50 ms: "stalls" almost immediately
  meter.job_done();

  TestServer ts(registry, {}, [&meter] {
    const sched::ProgressMeter::Snapshot snap = meter.snapshot();
    return HealthStatus{!snap.stalled, sched::health_json(snap)};
  });
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", ts.server->port(), "/healthz", status, body));
  EXPECT_EQ(status, 503);
  JsonValue doc;
  ASSERT_TRUE(json_parse(body, doc, nullptr)) << body;
  EXPECT_EQ(doc.find("ok")->boolean, false);
  EXPECT_GE(doc.number_or("stall_events", 0), 1);

  // A completion revives it.
  meter.job_done();
  ASSERT_TRUE(
      http_get("127.0.0.1", ts.server->port(), "/healthz", status, body));
  EXPECT_EQ(status, 200);
}

TEST(Server, HealthzDefaultsTo200WithoutCallback) {
  Registry registry;
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", ts.server->port(), "/healthz", status, body));
  EXPECT_EQ(status, 200);
}

TEST(Server, UnknownPathIs404) {
  Registry registry;
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();
  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", ts.server->port(), "/nope", status, body));
  EXPECT_EQ(status, 404);
  // The server survives the bad request and keeps answering.
  fetch_ok(ts.server->port(), "/metrics.json");
}

TEST(Server, WritesPortFile) {
  Registry registry;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "fu_obs_server_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path port_file = dir / "serve.port";

  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.port_file = port_file.string();
  {
    Server server(std::move(options));
    ASSERT_TRUE(server.ok()) << server.error();

    std::ifstream in(port_file);
    int written = -1;
    in >> written;
    EXPECT_EQ(written, server.port());
  }
  // Clean shutdown removes the file, so `fu watch <checkpoint-dir>` after
  // the run reports "no serve.port" instead of dialing a dead port.
  EXPECT_FALSE(std::filesystem::exists(port_file));
  std::filesystem::remove_all(dir);
}

TEST(Server, BindFailureLeavesServerInert) {
  Registry registry;
  ServerOptions first_options;
  first_options.port = 0;
  first_options.registry = &registry;
  Server first(std::move(first_options));
  ASSERT_TRUE(first.ok()) << first.error();

  ServerOptions clash;
  clash.port = first.port();  // already taken
  clash.registry = &registry;
  Server second(std::move(clash));
  EXPECT_FALSE(second.ok());
  EXPECT_FALSE(second.error().empty());
  EXPECT_EQ(second.port(), -1);
}

// The design's load-bearing claim: the server thread is strictly a reader of
// relaxed-atomic registry state, so full-rate recording concurrent with
// serving must be race-free. CI runs this test under TSan.
TEST(Server, ConcurrentRecordingWhileServingIsRaceFree) {
  Registry registry;
  TestServer ts(registry);
  ASSERT_TRUE(ts.server->ok()) << ts.server->error();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&registry, &stop] {
      Counter& counter = registry.counter("hammer.count");
      Histogram& hist = registry.histogram("hammer.us", {10, 100, 1000});
      Gauge& gauge = registry.gauge("hammer.depth");
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add();
        hist.record(i % 2000);
        gauge.set(static_cast<std::int64_t>(i % 64));
        ++i;
      }
    });
  }

  const char* paths[] = {"/metrics.json", "/metrics", "/deltas.json",
                         "/healthz"};
  for (int i = 0; i < 40; ++i) {
    int status = 0;
    std::string body;
    ASSERT_TRUE(http_get("127.0.0.1", ts.server->port(), paths[i % 4], status,
                         body));
    EXPECT_EQ(status, 200);
  }

  stop.store(true);
  for (std::thread& w : writers) w.join();
  // Snapshots raced with recording but every body must still have parsed;
  // make sure the registry itself is intact.
  EXPECT_GT(registry.counter("hammer.count").value(), 0u);
}

TEST(HttpGet, ReportsTransportFailure) {
  int status = 0;
  std::string body, error;
  // Port 1 on loopback: nothing listens there.
  EXPECT_FALSE(http_get("127.0.0.1", 1, "/metrics", status, body, &error,
                        0.5));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace fu::obs
