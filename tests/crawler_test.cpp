#include <fstream>
#include <gtest/gtest.h>

#include "crawler/serialize.h"
#include "test_util.h"

namespace fu::crawler {
namespace {

const net::SyntheticWeb& web() { return fu::test::small_web(); }
const SurveyResults& survey() { return fu::test::small_survey(); }

const net::SitePlan& ok_site() {
  for (const net::SitePlan& site : web().sites()) {
    if (site.status == net::SiteStatus::kOk) return site;
  }
  throw std::logic_error("no healthy site");
}

// --------------------------------------------------------------- monkey --

TEST(Monkey, ReturnsOnlySameSiteCandidates) {
  browser::BrowserConfig config;
  browser::BrowserSession session(web(), config, 5);
  session.load_page(web().home_url(ok_site()));
  support::Rng rng(5);
  const std::vector<net::Url> candidates = monkey_interact(session, rng);
  EXPECT_FALSE(candidates.empty());
  for (const net::Url& url : candidates) {
    EXPECT_TRUE(net::same_site(url, session.current_url())) << url.spec();
  }
}

TEST(Monkey, DifferentSeedsExploreDifferently) {
  browser::BrowserConfig config;
  browser::BrowserSession session(web(), config, 5);
  session.load_page(web().home_url(ok_site()));
  support::Rng rng_a(1), rng_b(2);
  const auto a = monkey_interact(session, rng_a);
  const auto b = monkey_interact(session, rng_b);
  // same page, different walks: order/number of candidates usually differs
  std::vector<std::string> sa, sb;
  for (const auto& u : a) sa.push_back(u.spec());
  for (const auto& u : b) sb.push_back(u.spec());
  EXPECT_TRUE(sa != sb || sa.empty());
}

// ---------------------------------------------------------------- crawl --

TEST(Crawl, VisitsAtMostThirteenPages) {
  CrawlConfig config;
  const SiteVisit visit = crawl_site(web(), config, ok_site(), 3);
  EXPECT_TRUE(visit.measured);
  EXPECT_GE(visit.pages_visited, 1);
  EXPECT_LE(visit.pages_visited, 13);  // 1 + 3 + 3x3 (§4.3.1)
  EXPECT_GT(visit.invocations, 0u);
  EXPECT_TRUE(visit.features.any());
}

TEST(Crawl, IsDeterministicPerSeed) {
  CrawlConfig config;
  const SiteVisit a = crawl_site(web(), config, ok_site(), 17);
  const SiteVisit b = crawl_site(web(), config, ok_site(), 17);
  EXPECT_EQ(a.features, b.features);
  EXPECT_EQ(a.invocations, b.invocations);
  EXPECT_EQ(a.pages_visited, b.pages_visited);
}

TEST(Crawl, DeadSiteIsUnmeasured) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int dead = 0;
  for (const net::SitePlan& site : fweb.sites()) {
    if (site.status != net::SiteStatus::kDead) continue;
    ++dead;
    CrawlConfig config;
    const SiteVisit visit = crawl_site(fweb, config, site, 3);
    EXPECT_FALSE(visit.home_loaded);
    EXPECT_FALSE(visit.measured);
    EXPECT_EQ(visit.pages_visited, 0);
  }
  EXPECT_GT(dead, 0);
}

TEST(Crawl, BrokenSiteIsUnmeasuredButResponded) {
  const net::SyntheticWeb& fweb = fu::test::failing_web();
  int broken = 0;
  for (const net::SitePlan& site : fweb.sites()) {
    if (site.status != net::SiteStatus::kBrokenScripts) continue;
    ++broken;
    CrawlConfig config;
    const SiteVisit visit = crawl_site(fweb, config, site, 3);
    EXPECT_TRUE(visit.home_loaded);
    EXPECT_FALSE(visit.measured);
  }
  EXPECT_GT(broken, 0);
}

TEST(Crawl, BlockingConfigurationBlocksScripts) {
  CrawlConfig blocking;
  blocking.browser.ad_blocker = blocker::make_ad_blocker(web());
  blocking.browser.tracking_blocker = blocker::make_tracking_blocker(web());
  int blocked = 0;
  int tried = 0;
  for (const net::SitePlan& site : web().sites()) {
    if (site.status != net::SiteStatus::kOk) continue;
    blocked += crawl_site(web(), blocking, site, 3).scripts_blocked;
    if (++tried >= 10) break;
  }
  EXPECT_GT(blocked, 0);
}

TEST(HumanVisit, VisitsUpToThreePages) {
  CrawlConfig config;
  const SiteVisit visit = human_visit(web(), config, ok_site(), 11);
  EXPECT_TRUE(visit.measured);
  EXPECT_GE(visit.pages_visited, 1);
  EXPECT_LE(visit.pages_visited, 3);  // §6.2: home + two prominent links
  EXPECT_TRUE(visit.features.any());
}

// --------------------------------------------------------------- survey --

TEST(Survey, CoversEverySiteOnce) {
  EXPECT_EQ(survey().sites.size(), web().sites().size());
  EXPECT_EQ(survey().passes, 3);
  EXPECT_TRUE(survey().has_ad_only);
  EXPECT_TRUE(survey().has_tracking_only);
}

TEST(Survey, MeasuredMatchesSiteHealth) {
  for (std::size_t i = 0; i < survey().sites.size(); ++i) {
    const SiteOutcome& outcome = survey().sites[i];
    switch (web().sites()[i].status) {
      case net::SiteStatus::kOk:
        EXPECT_TRUE(outcome.measured) << i;
        break;
      case net::SiteStatus::kDead:
        EXPECT_FALSE(outcome.responded) << i;
        EXPECT_FALSE(outcome.measured) << i;
        break;
      case net::SiteStatus::kBrokenScripts:
        EXPECT_TRUE(outcome.responded) << i;
        EXPECT_FALSE(outcome.measured) << i;
        break;
    }
  }
}

TEST(Survey, DefaultPassesAreRecordedPerRound) {
  for (const SiteOutcome& outcome : survey().sites) {
    if (!outcome.measured) continue;
    ASSERT_EQ(outcome.default_passes.size(), 3u);
    // the union of passes equals the default-config feature set
    support::DynamicBitset unioned(outcome.default_passes[0].size());
    for (const auto& pass : outcome.default_passes) unioned |= pass;
    EXPECT_EQ(unioned,
              outcome.features[static_cast<std::size_t>(
                  BrowsingConfig::kDefault)]);
  }
}

TEST(Survey, BlockingReducesOverallFeatureUse) {
  std::size_t features_default = 0, features_blocking = 0;
  for (const SiteOutcome& outcome : survey().sites) {
    features_default +=
        outcome.features[static_cast<std::size_t>(BrowsingConfig::kDefault)]
            .count();
    features_blocking +=
        outcome.features[static_cast<std::size_t>(BrowsingConfig::kBlocking)]
            .count();
  }
  EXPECT_LT(features_blocking, features_default);
}

TEST(Survey, TotalsAreConsistent) {
  EXPECT_GT(survey().sites_measured(), 100);
  EXPECT_GT(survey().total_pages_visited(), 1000u);
  EXPECT_EQ(survey().interaction_seconds(),
            survey().total_pages_visited() * 30);
  EXPECT_GT(survey().total_invocations(), 10000u);
}

// ----------------------------------------------------------- validation --

TEST(InternalValidation, NewStandardsDecayAcrossRounds) {
  const std::vector<double> rounds = new_standards_per_round(survey());
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_GT(rounds[0], 5.0);       // round 1 finds most standards
  EXPECT_LT(rounds[1], rounds[0]); // later rounds find fewer (Table 3)
  EXPECT_LT(rounds[2], rounds[1] + 0.5);
  EXPECT_GE(rounds[2], 0.0);
}

TEST(ExternalValidationTest, MostDomainsShowNothingNew) {
  const ExternalValidation validation =
      run_external_validation(survey(), 40, 1234);
  EXPECT_GT(validation.domains_evaluated, 20);
  EXPECT_EQ(validation.new_standards_per_domain.size(),
            static_cast<std::size_t>(validation.domains_evaluated));
  // §6.2: in the great majority of cases the human finds nothing new
  EXPECT_GT(validation.fraction_nothing_new(), 0.5);
  for (const int n : validation.new_standards_per_domain) {
    EXPECT_GE(n, 0);
    EXPECT_LE(n, 75);
  }
}

// ---------------------------------------------------------- persistence --

TEST(Serialization, RoundTripsSurveyResults) {
  const std::string path = ::testing::TempDir() + "/fu_survey_test.bin";
  ASSERT_TRUE(save_survey(survey(), 0x50e11edULL, path));

  const SurveyKey key = key_of(survey(), 0x50e11edULL);
  const auto loaded = load_survey(web(), key, path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->sites.size(), survey().sites.size());
  EXPECT_EQ(loaded->passes, survey().passes);
  for (std::size_t i = 0; i < loaded->sites.size(); ++i) {
    const SiteOutcome& a = survey().sites[i];
    const SiteOutcome& b = loaded->sites[i];
    EXPECT_EQ(a.measured, b.measured);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.pages_visited, b.pages_visited);
    for (std::size_t c = 0; c < a.features.size(); ++c) {
      EXPECT_EQ(a.features[c], b.features[c]);
    }
    EXPECT_EQ(a.default_passes.size(), b.default_passes.size());
  }
}

TEST(Serialization, RejectsMismatchedKey) {
  const std::string path = ::testing::TempDir() + "/fu_survey_test2.bin";
  ASSERT_TRUE(save_survey(survey(), 1, path));
  SurveyKey wrong = key_of(survey(), 1);
  wrong.passes += 1;
  EXPECT_FALSE(load_survey(web(), wrong, path).has_value());
  SurveyKey wrong_seed = key_of(survey(), 1);
  wrong_seed.seed = 2;
  EXPECT_FALSE(load_survey(web(), wrong_seed, path).has_value());
}

TEST(Serialization, RejectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/fu_survey_corrupt.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a survey file";
  }
  EXPECT_FALSE(
      load_survey(web(), key_of(survey(), 1), path).has_value());
  EXPECT_FALSE(load_survey(web(), key_of(survey(), 1), "/no/such/file")
                   .has_value());
}

TEST(Serialization, CacheFilenameEncodesKey) {
  SurveyKey key;
  key.seed = 0x10f3a7;
  key.site_count = 10000;
  key.passes = 5;
  key.ad_only = true;
  key.tracking_only = true;
  EXPECT_EQ(cache_filename(key), "survey_s10f3a7_n10000_p5_tt.bin");
}

}  // namespace
}  // namespace fu::crawler
