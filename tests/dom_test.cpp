#include <gtest/gtest.h>

#include "dom/html.h"
#include "dom/node.h"

namespace fu::dom {
namespace {

// ------------------------------------------------------------ node tree --

TEST(NodeTree, AppendAndTraverse) {
  Document doc;
  Element* div = doc.create_element("div");
  Element* span = doc.create_element("span");
  Text* text = doc.create_text("hello");
  doc.append_child(div);
  div->append_child(span);
  span->append_child(text);

  EXPECT_EQ(div->parent(), &doc);
  EXPECT_EQ(span->parent(), div);
  EXPECT_EQ(doc.text_content(), "hello");
  EXPECT_EQ(doc.node_count(), 3u);
}

TEST(NodeTree, InsertBeforeOrdersSiblings) {
  Document doc;
  Element* a = doc.create_element("a");
  Element* b = doc.create_element("b");
  Element* c = doc.create_element("c");
  doc.append_child(a);
  doc.append_child(c);
  doc.insert_before(b, c);
  ASSERT_EQ(doc.children().size(), 3u);
  EXPECT_EQ(doc.children()[1], b);
}

TEST(NodeTree, ReinsertionMovesNode) {
  Document doc;
  Element* a = doc.create_element("a");
  Element* b = doc.create_element("b");
  doc.append_child(a);
  doc.append_child(b);
  b->append_child(a);  // move a under b
  EXPECT_EQ(a->parent(), b);
  EXPECT_EQ(doc.children().size(), 1u);
}

TEST(NodeTree, RejectsCyclesAndBadArguments) {
  Document doc;
  Element* a = doc.create_element("a");
  Element* b = doc.create_element("b");
  doc.append_child(a);
  a->append_child(b);
  EXPECT_THROW(b->append_child(a), std::invalid_argument);   // ancestor
  EXPECT_THROW(a->append_child(a), std::invalid_argument);   // self
  EXPECT_THROW(doc.remove_child(b), std::invalid_argument);  // not a child
  Element* c = doc.create_element("c");
  EXPECT_THROW(doc.insert_before(c, b), std::invalid_argument);  // bad ref
}

TEST(NodeTree, RemoveChildUnlinks) {
  Document doc;
  Element* a = doc.create_element("a");
  doc.append_child(a);
  doc.remove_child(a);
  EXPECT_EQ(a->parent(), nullptr);
  EXPECT_TRUE(doc.children().empty());
}

TEST(ElementTest, AttributeAccess) {
  Document doc;
  Element* el = doc.create_element("input");
  EXPECT_FALSE(el->has_attribute("type"));
  EXPECT_EQ(el->attribute("type"), "");
  el->set_attribute("type", "text");
  el->set_attribute("id", "q");
  EXPECT_TRUE(el->has_attribute("type"));
  EXPECT_EQ(el->attribute("type"), "text");
  EXPECT_EQ(el->id(), "q");
  el->set_attribute("type", "email");  // overwrite
  EXPECT_EQ(el->attribute("type"), "email");
}

TEST(DocumentTest, QueriesByIdAndTag) {
  Document doc;
  doc.ensure_scaffold();
  Element* one = doc.create_element("p");
  one->set_attribute("id", "one");
  Element* two = doc.create_element("p");
  doc.body()->append_child(one);
  doc.body()->append_child(two);

  EXPECT_EQ(doc.get_element_by_id("one"), one);
  EXPECT_EQ(doc.get_element_by_id("missing"), nullptr);
  EXPECT_EQ(doc.get_elements_by_tag("p").size(), 2u);
  EXPECT_GE(doc.all_elements().size(), 5u);  // html/head/body/p/p
}

TEST(DocumentTest, EnsureScaffoldIsIdempotent) {
  Document doc;
  doc.ensure_scaffold();
  Element* head = doc.head();
  Element* body = doc.body();
  doc.ensure_scaffold();
  EXPECT_EQ(doc.head(), head);
  EXPECT_EQ(doc.body(), body);
  EXPECT_EQ(doc.html()->children().size(), 2u);
}

// ---------------------------------------------------------- HTML parser --

TEST(HtmlParser, BasicDocument) {
  const auto doc = parse_html(
      "<!doctype html><html><head><title>T</title></head>"
      "<body><p id=\"x\">hi</p></body></html>");
  EXPECT_NE(doc->head(), nullptr);
  EXPECT_NE(doc->body(), nullptr);
  Element* p = doc->get_element_by_id("x");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->text_content(), "hi");
}

TEST(HtmlParser, AttributeSyntaxVariants) {
  const auto doc = parse_html(
      "<div a=\"1\" b='2' c=3 d e =\"x y\"><br></div>");
  const auto divs = doc->get_elements_by_tag("div");
  ASSERT_EQ(divs.size(), 1u);
  EXPECT_EQ(divs[0]->attribute("a"), "1");
  EXPECT_EQ(divs[0]->attribute("b"), "2");
  EXPECT_EQ(divs[0]->attribute("c"), "3");
  EXPECT_TRUE(divs[0]->has_attribute("d"));
  EXPECT_EQ(divs[0]->attribute("e"), "x y");
}

TEST(HtmlParser, VoidAndSelfClosingElements) {
  const auto doc = parse_html("<body><img src=\"a.png\"><input/><p>t</p></body>");
  EXPECT_EQ(doc->get_elements_by_tag("img").size(), 1u);
  EXPECT_EQ(doc->get_elements_by_tag("input").size(), 1u);
  // the img did not swallow the rest of the document
  EXPECT_EQ(doc->get_elements_by_tag("img")[0]->children().size(), 0u);
  EXPECT_EQ(doc->get_elements_by_tag("p").size(), 1u);
}

TEST(HtmlParser, ScriptBodyIsRawText) {
  const auto doc = parse_html(
      "<head><script>if (a < b && c > d) { x = \"<div>\"; }</script></head>");
  const auto scripts = doc->get_elements_by_tag("script");
  ASSERT_EQ(scripts.size(), 1u);
  EXPECT_EQ(scripts[0]->text_content(),
            "if (a < b && c > d) { x = \"<div>\"; }");
  // no <div> element was created from the string inside the script
  EXPECT_TRUE(doc->get_elements_by_tag("div").empty());
}

TEST(HtmlParser, CommentsAndDoctype) {
  const auto doc =
      parse_html("<!doctype html><!-- note --><body><!-- inner --></body>");
  int comments = 0;
  doc->for_each([&comments](Node& node) {
    comments += node.type() == NodeType::kComment ? 1 : 0;
  });
  EXPECT_EQ(comments, 2);
}

TEST(HtmlParser, RecoversFromMisnestedTags) {
  const auto doc = parse_html("<body><b><i>x</b></i><p>y</p></body>");
  EXPECT_EQ(doc->get_elements_by_tag("p").size(), 1u);
  EXPECT_EQ(doc->text_content(), "xy");
}

TEST(HtmlParser, IgnoresStrayCloseTagsAndBrokenMarkup) {
  const auto doc = parse_html("</nothing><body><p>ok</p><");
  EXPECT_EQ(doc->get_elements_by_tag("p").size(), 1u);
  const auto doc2 = parse_html("</nothing><body><p>ok</p>");
  EXPECT_EQ(doc2->get_elements_by_tag("p").size(), 1u);
  const auto doc3 = parse_html("text only, no tags at all");
  EXPECT_EQ(doc3->text_content(), "text only, no tags at all");
}

TEST(HtmlParser, UnterminatedScriptDoesNotCrash) {
  const auto doc = parse_html("<head><script>var x = 1;");
  const auto scripts = doc->get_elements_by_tag("script");
  ASSERT_EQ(scripts.size(), 1u);
  EXPECT_EQ(scripts[0]->text_content(), "var x = 1;");
}

TEST(HtmlSerializer, RoundTripPreservesStructure) {
  const char* source =
      "<html><head><script src=\"/js/app0.js\"></script></head>"
      "<body><a href=\"/s0/p0.html\">link</a><img src=\"x.png\"></body></html>";
  const auto doc = parse_html(source);
  const std::string serialized = serialize(*doc);
  const auto reparsed = parse_html(serialized);
  EXPECT_EQ(reparsed->get_elements_by_tag("a").size(), 1u);
  EXPECT_EQ(reparsed->get_elements_by_tag("a")[0]->attribute("href"),
            "/s0/p0.html");
  EXPECT_EQ(reparsed->get_elements_by_tag("img").size(), 1u);
  EXPECT_EQ(serialize(*reparsed), serialized);  // fixed point
}

TEST(HtmlSerializer, EscapesTextAndAttributes) {
  Document doc;
  doc.ensure_scaffold();
  Element* el = doc.create_element("div");
  el->set_attribute("title", "a<b & \"c\"");
  el->append_child(doc.create_text("1 < 2 & 3"));
  doc.body()->append_child(el);
  const std::string html = serialize(*doc.body());
  EXPECT_NE(html.find("a&lt;b &amp; &quot;c&quot;"), std::string::npos);
  EXPECT_NE(html.find("1 &lt; 2 &amp; 3"), std::string::npos);
}

TEST(VoidElements, KnownTags) {
  EXPECT_TRUE(is_void_element("br"));
  EXPECT_TRUE(is_void_element("meta"));
  EXPECT_FALSE(is_void_element("div"));
  EXPECT_FALSE(is_void_element("script"));
}

}  // namespace
}  // namespace fu::dom
