#include <fstream>

#include <gtest/gtest.h>

#include "analysis/tables.h"
#include "support/stats.h"
#include "test_util.h"

namespace fu::analysis {
namespace {

const Analysis& an() { return fu::test::small_analysis(); }
const catalog::Catalog& cat() { return fu::test::shared_catalog(); }

// -------------------------------------------------------------- metrics --

TEST(Metrics, MeasuredSitesMatchesSurvey) {
  EXPECT_EQ(an().measured_sites(), fu::test::small_survey().sites_measured());
  EXPECT_GT(an().measured_sites(), 100);
}

TEST(Metrics, FeatureSitesAreBounded) {
  for (std::size_t f = 0; f < cat().features().size(); ++f) {
    const auto fid = static_cast<catalog::FeatureId>(f);
    for (const auto config : crawler::kAllConfigs) {
      const int sites = an().feature_sites(fid, config);
      EXPECT_GE(sites, 0);
      EXPECT_LE(sites, an().measured_sites());
    }
  }
}

TEST(Metrics, BlockRatesAreWithinUnitInterval) {
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    for (const auto config :
         {BrowsingConfig::kBlocking, BrowsingConfig::kAdOnly,
          BrowsingConfig::kTrackingOnly}) {
      const double rate = an().standard_block_rate(sid, config);
      EXPECT_GE(rate, 0.0) << s;
      EXPECT_LE(rate, 1.0) << s;
    }
  }
}

TEST(Metrics, StandardSitesBoundedByFeatureSum) {
  // a standard is used wherever >= 1 feature is, so its site count is at
  // least the max and at most the sum of its features' counts
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    int max_feature = 0;
    long sum_features = 0;
    for (const catalog::FeatureId fid : cat().features_of(sid)) {
      const int sites = an().feature_sites(fid, BrowsingConfig::kDefault);
      max_feature = std::max(max_feature, sites);
      sum_features += sites;
    }
    const int standard = an().standard_sites(sid, BrowsingConfig::kDefault);
    EXPECT_GE(standard, max_feature) << s;
    EXPECT_LE(standard, sum_features) << s;
  }
}

TEST(Metrics, CoreDomIsNearlyEverywhereAndUnblocked) {
  const auto dom1 = cat().standard_by_abbreviation("DOM1");
  EXPECT_GT(an().standard_site_fraction(dom1), 0.85);
  EXPECT_LT(an().standard_block_rate(dom1), 0.1);
}

TEST(Metrics, HeavilyBlockedStandardsAreBlocked) {
  const auto svg = cat().standard_by_abbreviation("SVG");
  if (an().standard_sites(svg, BrowsingConfig::kDefault) >= 5) {
    EXPECT_GT(an().standard_block_rate(svg), 0.6);
  }
  const auto be = cat().standard_by_abbreviation("BE");
  if (an().standard_sites(be, BrowsingConfig::kDefault) >= 5) {
    EXPECT_GT(an().standard_block_rate(be), 0.6);
  }
}

TEST(Metrics, TrackerStandardsBlockMoreUnderGhostery) {
  // WebRTC & WebCrypto usage sits in tracker scripts (Figure 7); Ghostery
  // alone should block them more than AdBlock alone.
  const auto wcr = cat().standard_by_abbreviation("WCR");
  const double ad = an().standard_block_rate(wcr, BrowsingConfig::kAdOnly);
  const double tracking =
      an().standard_block_rate(wcr, BrowsingConfig::kTrackingOnly);
  EXPECT_GT(tracking, ad);
}

TEST(Metrics, ChannelMessagingBlocksMoreUnderAdBlock) {
  // H-CM is the paper's example of ad-carried usage.
  const auto hcm = cat().standard_by_abbreviation("H-CM");
  const double ad = an().standard_block_rate(hcm, BrowsingConfig::kAdOnly);
  const double tracking =
      an().standard_block_rate(hcm, BrowsingConfig::kTrackingOnly);
  EXPECT_GT(ad, tracking);
}

TEST(Metrics, ComplexityDistributionIsPlausible) {
  const std::vector<int> complexity = an().standards_per_site();
  ASSERT_EQ(complexity.size(),
            static_cast<std::size_t>(an().measured_sites()));
  std::vector<double> values(complexity.begin(), complexity.end());
  const double median = support::percentile(values, 50);
  // §5.9: most sites use between 14 and 32 standards
  EXPECT_GT(median, 10.0);
  EXPECT_LT(median, 40.0);
  for (const int c : complexity) {
    EXPECT_GE(c, 0);
    EXPECT_LE(c, 75);
  }
}

TEST(Metrics, BlockingReducesComplexity) {
  const std::vector<int> plain = an().standards_per_site();
  const std::vector<int> shielded =
      an().standards_per_site(BrowsingConfig::kBlocking);
  double sum_plain = 0, sum_shielded = 0;
  for (const int c : plain) sum_plain += c;
  for (const int c : shielded) sum_shielded += c;
  EXPECT_LT(sum_shielded, sum_plain);
}

TEST(Metrics, VisitFractionsAreWeightedFractions) {
  for (std::size_t s = 0; s < cat().standard_count(); ++s) {
    const auto sid = static_cast<catalog::StandardId>(s);
    const double v = an().standard_visit_fraction(sid);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    // a standard on zero sites has zero visit share
    if (an().standard_sites(sid, BrowsingConfig::kDefault) == 0) {
      EXPECT_EQ(v, 0.0);
    }
  }
}

TEST(Metrics, HeadlineIsInternallyConsistent) {
  const Analysis::Headline h = an().headline();
  EXPECT_EQ(h.features_total, 1392);
  EXPECT_EQ(h.standards_total, 75);
  EXPECT_GE(h.features_never_used, 0);
  EXPECT_LE(h.features_never_used + h.features_under_1pct, h.features_total);
  // blocking shrinks usage overall (small slack: discovery randomness means
  // a blocking pass can occasionally see a borderline feature the default
  // passes missed)
  EXPECT_GE(h.features_under_1pct_blocking + 5,
            h.features_never_used + h.features_under_1pct);
  EXPECT_GE(h.standards_never_used_blocking + 1, h.standards_never_used);
  EXPECT_GE(h.standards_under_1pct_blocking + 1, h.standards_under_1pct);
}

// ------------------------------------------------------------ renderers --

TEST(Renderers, Table1ContainsAllRows) {
  const std::string out = render_table1(fu::test::small_survey());
  EXPECT_NE(out.find("Domains measured"), std::string::npos);
  EXPECT_NE(out.find("Total website interaction time"), std::string::npos);
  EXPECT_NE(out.find("Web pages visited"), std::string::npos);
  EXPECT_NE(out.find("Feature invocations recorded"), std::string::npos);
}

TEST(Renderers, Table2ListsMajorStandards) {
  const std::string out = render_table2(an());
  EXPECT_NE(out.find("HTML: Canvas"), std::string::npos);
  EXPECT_NE(out.find("Scalable Vector Graphics"), std::string::npos);
  EXPECT_NE(out.find("Non-Standard"), std::string::npos);
  // 0-CVE standards below 1% don't make the cut
  EXPECT_EQ(out.find("Web MIDI API"), std::string::npos);
  // CVE ordering: Canvas (15 CVEs) precedes DOM1 (0 CVEs)
  EXPECT_LT(out.find("HTML: Canvas"), out.find("DOM, Level 1"));
}

TEST(Renderers, Table3HasRounds2Through) {
  const std::string out = render_table3(fu::test::small_survey());
  EXPECT_NE(out.find("Round #"), std::string::npos);
  EXPECT_NE(out.find("2"), std::string::npos);
}

TEST(Renderers, FiguresRenderNonEmpty) {
  EXPECT_NE(render_fig1(cat()).find("Blink"), std::string::npos);
  EXPECT_NE(render_fig3(an()).find("Portion of standards"), std::string::npos);
  EXPECT_NE(render_fig4(an()).find("Block rate"), std::string::npos);
  EXPECT_NE(render_fig5(an()).find("% of visits"), std::string::npos);
  EXPECT_NE(render_fig6(an()).find("block rate < 33%"), std::string::npos);
  EXPECT_NE(render_fig7(an()).find("Tracking block rate"), std::string::npos);
  EXPECT_NE(render_fig8(an()).find("median"), std::string::npos);
  EXPECT_NE(render_headline(an()).find("features never used"),
            std::string::npos);
}

TEST(Renderers, Fig4OmitsUnusedStandards) {
  const std::string out = render_fig4(an());
  // the never-shipped tail cannot appear on a log-scale popularity plot
  EXPECT_EQ(out.find("MIDI"), std::string::npos);
}

TEST(Renderers, Fig9RendersHistogram) {
  const crawler::ExternalValidation validation =
      crawler::run_external_validation(fu::test::small_survey(), 30, 99);
  const std::string out = render_fig9(validation);
  EXPECT_NE(out.find("domains evaluated"), std::string::npos);
  EXPECT_NE(out.find("83.7%"), std::string::npos);  // the paper anchor
}

}  // namespace
}  // namespace fu::analysis
