// Tests for the register-bytecode compiler and VM: golden disassembly,
// inline-cache state transitions (monomorphic -> polymorphic -> megamorphic),
// shape-tree sharing across same-layout objects, and the measuring
// extension's load-bearing invariant that an in-place method overwrite
// leaves warm caches warm.
#include <gtest/gtest.h>

#include <span>

#include "obs/profiler.h"
#include "script/bytecode.h"
#include "script/compiler.h"
#include "script/interp.h"
#include "script/parser.h"

namespace fu::script {
namespace {

// ------------------------------------------------------- disassembler ----

// Source and expected output are locked together: the golden text below is
// exactly what `fu disasm` prints for this program. If a compiler change
// alters codegen intentionally, regenerate with
//   ./build/tools/fu disasm <file-with-kDisasmSource>
const char kDisasmSource[] =
    "function add(a, b) { return a + b; }\n"
    "var o = { x: 1 };\n"
    "for (var i = 0; i < 3; i = i + 1) { o.x = add(o.x, i); }\n";

const char kDisasmGolden[] =
    "== <program> (regs=4, params=0)\n"
    "0000  fuel=1   make_function r0, fn[0]    ; add\n"
    "0001           define_var    r0    ; define add\n"
    "0002  fuel=2   make_object   r0\n"
    "0003  fuel=1   load_const    r1, const[0]    ; 1\n"
    "0004           define_prop   r1, r0    ; .x\n"
    "0005           define_var    r0    ; define o\n"
    "0006  fuel=3   load_const    r0, const[1]    ; 0\n"
    "0007           define_var    r0    ; define i\n"
    "0008  fuel=2   get_var       r0, var_ic[0]    ; i\n"
    "0009  fuel=1   load_const    r1, const[2]    ; 3\n"
    "0010           lt            r0, r0, r1\n"
    "0011           jump_if_false r0 -> 0024\n"
    "0012  fuel=5   get_var       r1, var_ic[1]    ; add\n"
    "0013  fuel=2   get_var       r2, var_ic[2]    ; o\n"
    "0014           get_prop      r2, r2, prop_ic[0]    ; .x\n"
    "0015  fuel=1   get_var       r3, var_ic[3]    ; i\n"
    "0016           call          r0, fn=r1, argc=2  ; call_ic[0]\n"
    "0017  fuel=1   get_var       r1, var_ic[4]    ; o\n"
    "0018           set_prop      r0, r1, write_ic[0]    ; .x\n"
    "0019  fuel=3   get_var       r0, var_ic[5]    ; i\n"
    "0020  fuel=1   load_const    r1, const[3]    ; 1\n"
    "0021           add           r0, r0, r1\n"
    "0022           set_var       r0, var_ic[6]    ; i\n"
    "0023           jump          -> 0008\n"
    "0024           return_undef  \n"
    "\n"
    "== add (regs=2, params=2)\n"
    "0000  fuel=3   get_local     r0, local[0]\n"
    "0001  fuel=1   get_local     r1, local[1]\n"
    "0002           add           r0, r0, r1\n"
    "0003           return        r0\n"
    "0004           return_undef  \n"
;

TEST(BytecodeDisasm, GoldenOutput) {
  AtomTable atoms;
  const Program program = parse_program(kDisasmSource, &atoms);
  EXPECT_EQ(disassemble_program(program, atoms), kDisasmGolden);
}

double global_number(Interpreter& interp, const char* name) {
  const Value* v = interp.globals().lookup(name);
  return v == nullptr ? -1 : v->to_number();
}

// -------------------------------------------------- register allocator ----

TEST(RegisterAllocation, ChainedExpressionsReuseDeadTemporaries) {
  // A 30-term accumulation compiles into two registers: each binary op
  // computes into its own destination (the lhs temporary is the dst) and
  // frees the rhs temporary immediately. Without dead-temporary reuse this
  // chain needs 31 live registers and spills past the VM's 24-register
  // inline frame; with it, deep real-world expression chains stay on the
  // fast frame path.
  AtomTable atoms;
  const Program program = parse_program(
      "var s = x1 + x2 + x3 + x4 + x5 + x6 + x7 + x8 + x9 + x10 +\n"
      "        x11 + x12 + x13 + x14 + x15 + x16 + x17 + x18 + x19 + x20 +\n"
      "        x21 + x22 + x23 + x24 + x25 + x26 + x27 + x28 + x29 + x30;\n",
      &atoms);
  const Chunk& chunk = chunk_for(program, atoms);
  EXPECT_EQ(chunk.num_regs, 2u);

  // Disasm-visible: the accumulator adds in place (dst == lhs register).
  const std::string text = disassemble(chunk, atoms);
  EXPECT_NE(text.find("add           r0, r0, r1"), std::string::npos) << text;
}

TEST(RegisterAllocation, MemberChainsComputeInPlace) {
  AtomTable atoms;
  const Program program =
      parse_program("var v = o.a.b.c.d;\n", &atoms);
  const Chunk& chunk = chunk_for(program, atoms);
  // The base object loads into the destination register and every get_prop
  // overwrites it: one register for the whole chain.
  EXPECT_EQ(chunk.num_regs, 1u);
  const std::string text = disassemble(chunk, atoms);
  EXPECT_NE(text.find("get_prop      r0, r0"), std::string::npos) << text;
}

// ----------------------------------------------------- call-site caches ----

TEST(CallSiteCaches, MonomorphicCallSiteCachesCallee) {
  Interpreter interp;
  const Program program = parse_program(
      "function f() { return 1; }\n"
      "var total = 0;\n"
      "for (var i = 0; i < 5; i = i + 1) { total = total + f(); }\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "total"), 5);

  // The loop's call site warmed its CallIC: the cached callee is the heap
  // index of `f` and the resolved Callable is pinned for the hit path.
  const Chunk& chunk = chunk_for(program, interp.heap().atoms());
  ASSERT_FALSE(chunk.call_ics.empty());
  bool warmed = false;
  for (const CallIC& ic : chunk.call_ics) {
    if (ic.callee != 0 && ic.target != nullptr) warmed = true;
  }
  EXPECT_TRUE(warmed);
}

TEST(CallSiteCaches, CalleeChangeRepathsAndStaysCorrect) {
  // One call site, two alternating callees: every change of callee misses
  // the monomorphic cache, repaths through the generic resolver, and
  // re-caches — results must be exact throughout.
  Interpreter interp;
  const Program program = parse_program(
      "function one() { return 1; }\n"
      "function two() { return 2; }\n"
      "function callit(f) { return f(); }\n"
      "var total = 0;\n"
      "for (var i = 0; i < 6; i = i + 1) {\n"
      "  total = total + callit(i % 2 == 0 ? one : two);\n"
      "}\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "total"), 9);  // 1+2+1+2+1+2
}

// ---------------------------------------------------------------- ICs ----

// Depth-first search over a chunk and its function pool for every PropIC
// keyed on `name`.
void collect_prop_ics(const Chunk& chunk, AtomTable& atoms, Atom name,
                      std::vector<const PropIC*>& out) {
  for (const PropIC& ic : chunk.prop_ics) {
    if (ic.atom == name) out.push_back(&ic);
  }
  for (const auto& fn : chunk.functions) {
    collect_prop_ics(chunk_for(*fn, atoms), atoms, name, out);
  }
}

const PropIC& only_prop_ic(const Program& program, Interpreter& interp,
                           const char* name) {
  AtomTable& atoms = interp.heap().atoms();
  const Atom atom = atoms.lookup(name);
  EXPECT_NE(atom, kNoAtom);
  std::vector<const PropIC*> ics;
  collect_prop_ics(chunk_for(program, atoms), atoms, atom, ics);
  EXPECT_EQ(ics.size(), 1u);
  return *ics.front();
}

TEST(InlineCaches, SameLayoutObjectsShareOneEntry) {
  // Eight distinct objects, one shape: same (null) prototype and the same
  // property insertion order walk the same shared shape-transition path, so
  // the read site in `read` stays monomorphic.
  Interpreter interp;
  const Program program = parse_program(
      "function make(v) { return { p: v }; }\n"
      "function read(o) { return o.p; }\n"
      "var total = 0;\n"
      "for (var i = 0; i < 8; i = i + 1) { total = total + read(make(i)); }\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "total"), 28);

  const PropIC& ic = only_prop_ic(program, interp, "p");
  EXPECT_EQ(ic.count, 1);
}

TEST(InlineCaches, DistinctLayoutsGoPolymorphic) {
  Interpreter interp;
  const Program program = parse_program(
      "function read(o) { return o.p; }\n"
      "var a = { p: 1 };\n"
      "var b = { q: 9, p: 2 };\n"
      "var total = read(a) + read(b) + read(a) + read(b);\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "total"), 6);

  const PropIC& ic = only_prop_ic(program, interp, "p");
  EXPECT_EQ(ic.count, 2);  // one entry per layout, both still cache hits
}

TEST(InlineCaches, SaturationGoesMegamorphicAndStaysCorrect) {
  // Five layouts exceed PropIC::kMaxEntries (4): the site must collapse to
  // the megamorphic terminal state and keep producing correct reads via the
  // generic path.
  Interpreter interp;
  const Program program = parse_program(
      "function read(o) { return o.p; }\n"
      "var total = read({ p: 1 }) + read({ a: 0, p: 2 }) +\n"
      "            read({ b: 0, p: 3 }) + read({ c: 0, p: 4 }) +\n"
      "            read({ d: 0, p: 5 });\n"
      "total = total + read({ e: 0, p: 10 });\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "total"), 25);

  const PropIC& ic = only_prop_ic(program, interp, "p");
  EXPECT_EQ(ic.count, PropIC::kMegamorphic);
}

TEST(InlineCaches, InPlaceOverwriteKeepsCachesWarm) {
  // The measuring extension replaces method slot *values* on warmed
  // prototypes (browser/extension.cpp). That must not change the holder's
  // shape, so call sites stay monomorphic and read the shim.
  Interpreter interp;
  const Program program = parse_program(
      "var o = { m: function () { return 1; } };\n"
      "function poke() { return o.m(); }\n"
      "var before = poke() + poke() + poke();\n");
  interp.execute(program);
  EXPECT_EQ(global_number(interp, "before"), 3);

  const PropIC& ic = only_prop_ic(program, interp, "m");
  ASSERT_EQ(ic.count, 1);
  const std::uint32_t cached_shape = ic.entries[0].receiver_shape;

  // Overwrite o.m in place, exactly the way the extension shims a method.
  Heap& heap = interp.heap();
  const Value* o = interp.globals().lookup("o");
  ASSERT_NE(o, nullptr);
  const std::uint32_t shape_before = heap.get(o->as_object()).properties.shape();
  Value* slot = heap.own_property(o->as_object(), "m");
  ASSERT_NE(slot, nullptr);
  *slot = Value(heap.make_function(
      [](Interpreter&, const Value&, std::span<const Value>) {
        return Value(2.0);
      },
      "instrumented:m"));
  EXPECT_EQ(heap.get(o->as_object()).properties.shape(), shape_before);

  const Program again = parse_program("var after = poke() + poke();");
  interp.execute(again);
  EXPECT_EQ(global_number(interp, "after"), 4);  // both calls hit the shim

  // Still the same single warm entry: the overwrite neither invalidated nor
  // grew the cache.
  EXPECT_EQ(ic.count, 1);
  EXPECT_EQ(ic.entries[0].receiver_shape, cached_shape);
}

TEST(InlineCaches, ShapeTreeSharesTransitionsAcrossObjects) {
  // Direct shape-tree check, below the IC layer: objects built through the
  // same insertion sequence end on the same node; diverging orders fork.
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef a = heap.make_object(ObjectRef(), "A");
  const ObjectRef b = heap.make_object(ObjectRef(), "B");
  const ObjectRef c = heap.make_object(ObjectRef(), "C");
  EXPECT_EQ(heap.get(a).properties.shape(), heap.get(b).properties.shape());

  heap.set_property(a, "x", Value(1.0));
  heap.set_property(b, "x", Value(2.0));
  heap.set_property(c, "y", Value(3.0));
  EXPECT_EQ(heap.get(a).properties.shape(), heap.get(b).properties.shape());
  EXPECT_NE(heap.get(a).properties.shape(), heap.get(c).properties.shape());

  heap.set_property(a, "y", Value(4.0));
  heap.set_property(b, "y", Value(5.0));
  EXPECT_EQ(heap.get(a).properties.shape(), heap.get(b).properties.shape());

  // A different prototype roots a different tree even for the same names.
  const ObjectRef proto = heap.make_object(ObjectRef(), "Proto");
  const ObjectRef d = heap.make_object(proto, "D");
  heap.set_property(d, "x", Value(6.0));
  heap.set_property(d, "y", Value(7.0));
  EXPECT_NE(heap.get(d).properties.shape(), heap.get(a).properties.shape());
}

// ----------------------------------------------------------- profiler ----

TEST(VmProfiler, ScriptFunctionFramesStillAttribute) {
  // PR 6 wired script-function activations into the sampling profiler as
  // "fn:<name>" frames; the VM call path must keep pushing them so `fu prof`
  // attribution is unchanged.
  obs::Profiler profiler(997.0);
  profiler.start();
  obs::prof::set_thread_label("vm-prof-test");

  Interpreter interp;
  const Program program = parse_program(
      "function spin(n) {\n"
      "  var s = 0;\n"
      "  for (var i = 0; i < n; i = i + 1) { s = s + i; }\n"
      "  return s;\n"
      "}\n");
  interp.execute(program);
  const Value* spin = interp.globals().lookup("spin");
  ASSERT_NE(spin, nullptr);

  const Value arg(5000.0);
  double last = 0;
  while (profiler.samples() < 50) {
    last = interp.call_function(*spin, Value(), std::span<const Value>(&arg, 1))
               .to_number();
  }
  const obs::FoldedProfile profile = profiler.stop();
  EXPECT_EQ(last, 5000.0 * 4999.0 / 2.0);

  bool saw_fn_frame = false;
  for (const auto& [stack, samples] : profile.stacks) {
    if (stack.find("fn:spin") != std::string::npos) saw_fn_frame = true;
  }
  EXPECT_TRUE(saw_fn_frame) << profile.to_text();
}

}  // namespace
}  // namespace fu::script
