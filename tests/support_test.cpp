#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "support/bitset.h"
#include "support/csv.h"
#include "support/date.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"

namespace fu::support {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, LabeledChildStreamsAreIndependent) {
  Rng a(7, "alpha"), b(7, "beta"), a2(7, "alpha");
  EXPECT_NE(a(), b());
  Rng a3(7, "alpha");
  EXPECT_EQ(a3(), a2());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCloseToHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyTracksProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, WeightedIndexHonoursWeights) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedIndexDegenerateCases) {
  Rng rng(29);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(zeros), zeros.size());
  EXPECT_EQ(rng.weighted_index({}), 0u);
}

TEST(Rng, ShuffleProducesPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

// ---------------------------------------------------------------- Zipf ---

TEST(Zipf, PmfSumsToOne) {
  const Zipf zipf(1000, 0.95);
  double total = 0;
  for (std::size_t r = 1; r <= 1000; ++r) total += zipf.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfIsMonotonicallyDecreasing) {
  const Zipf zipf(100, 1.1);
  for (std::size_t r = 1; r < 100; ++r) {
    EXPECT_GE(zipf.pmf(r), zipf.pmf(r + 1));
  }
}

TEST(Zipf, SampleMatchesPmfForTopRank) {
  const Zipf zipf(50, 1.0);
  Rng rng(37);
  int top = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) top += zipf.sample(rng) == 1 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(top) / kN, zipf.pmf(1), 0.01);
}

TEST(Zipf, RejectsEmptyDomain) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
}

class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, ValidDistribution) {
  const Zipf zipf(200, GetParam());
  double total = 0;
  for (std::size_t r = 1; r <= 200; ++r) {
    EXPECT_GE(zipf.pmf(r), 0.0);
    total += zipf.pmf(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(zipf.pmf(0), 0.0);
  EXPECT_EQ(zipf.pmf(201), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.0, 0.5, 0.95, 1.0, 1.5, 2.0));

// --------------------------------------------------------------- stats ---

TEST(Summary, TracksMoments) {
  Summary s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(CdfAt, CountsInclusive) {
  const std::vector<double> v = {1, 2, 2, 3};
  EXPECT_DOUBLE_EQ(cdf_at(v, 2), 0.75);
  EXPECT_DOUBLE_EQ(cdf_at(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(v, 3), 1.0);
}

TEST(HistogramTest, BinsAndClamps) {
  Histogram h(0, 10, 5);
  h.add(-1);   // clamps into bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100);  // clamps into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(HistogramTest, RejectsBadRange) {
  EXPECT_THROW(Histogram(0, 0, 5), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
}

TEST(Correlation, PearsonPerfectAndInverse) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> inv(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, inv), -1.0, 1e-12);
}

TEST(Correlation, DegenerateInputsReturnZero) {
  EXPECT_EQ(pearson({1}, {1}), 0.0);
  EXPECT_EQ(pearson({1, 2}, {5, 5}), 0.0);
  EXPECT_EQ(spearman({1}, {2}), 0.0);
}

TEST(Correlation, SpearmanHandlesMonotonicNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(AsciiBar, WidthAndFill) {
  EXPECT_EQ(ascii_bar(0, 10), std::string(10, ' '));
  EXPECT_EQ(ascii_bar(1, 10), std::string(10, '#'));
  EXPECT_EQ(ascii_bar(0.5, 10).substr(0, 5), "#####");
  EXPECT_EQ(ascii_bar(2.0, 4), "####");  // clamped
}

// -------------------------------------------------------------- strings --

TEST(Strings, SplitKeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitNonemptyDropsEmpties) {
  EXPECT_EQ(split_nonempty("/a//b/", '/'),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Strings, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(contains("hello world", "lo wo"));
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(21511926733ULL), "21,511,926,733");
}

TEST(Strings, PercentFormatting) {
  EXPECT_EQ(percent(0.868), "86.8%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.00123, 2), "0.12%");
}

struct GlobCase {
  const char* pattern;
  const char* text;
  bool match;
};

class GlobMatch : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatch, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GlobMatch,
    ::testing::Values(GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
                      GlobCase{"a*c", "abc", true},
                      GlobCase{"a*c", "ac", true},
                      GlobCase{"a*c", "abd", false},
                      GlobCase{"?x", "ax", true}, GlobCase{"?x", "x", false},
                      GlobCase{"*.js", "tag.js", true},
                      GlobCase{"*.js", "tag.json", false},
                      GlobCase{"a**b", "a123b", true},
                      GlobCase{"", "", true}, GlobCase{"", "a", false}));

// ---------------------------------------------------------------- Date ---

TEST(DateTest, RoundTripsCivil) {
  const Date d(2016, 5, 20);
  EXPECT_EQ(d.year(), 2016);
  EXPECT_EQ(d.month(), 5);
  EXPECT_EQ(d.day(), 20);
  EXPECT_EQ(d.to_string(), "2016-05-20");
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(Date(1970, 1, 1).days_since_epoch(), 0);
  EXPECT_EQ(Date(1970, 1, 2).days_since_epoch(), 1);
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_NO_THROW(Date(2016, 2, 29));
  EXPECT_THROW(Date(2015, 2, 29), std::invalid_argument);
  EXPECT_THROW(Date(2000, 13, 1), std::invalid_argument);
  EXPECT_THROW(Date(2000, 0, 1), std::invalid_argument);
}

TEST(DateTest, ArithmeticAndComparison) {
  const Date a(2004, 11, 9);
  const Date b = a.plus_days(365);
  EXPECT_EQ(days_between(a, b), 365);
  EXPECT_LT(a, b);
  EXPECT_EQ(b.to_string(), "2005-11-09");
}

TEST(DateTest, FractionalYear) {
  EXPECT_NEAR(Date(2013, 1, 1).fractional_year(), 2013.0, 1e-9);
  EXPECT_NEAR(Date(2013, 7, 2).fractional_year(), 2013.5, 0.01);
}

// ----------------------------------------------------------------- CSV ---

TEST(Csv, EscapesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WriterReaderRoundTrip) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.row("blocking", "example.com", "Node.cloneNode()", 10);
  writer.row("default", "a,b.com", 1.5);
  const auto rows = csv_parse(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"blocking", "example.com",
                                      "Node.cloneNode()", "10"}));
  EXPECT_EQ(rows[1][1], "a,b.com");
}

TEST(Csv, ParsesQuotedFields) {
  const auto fields = csv_parse_line("a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b,c", "d\"e"}));
}

// --------------------------------------------------------------- bitset --

TEST(Bitset, SetTestResetCount) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.any());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_TRUE(bits.any());
}

TEST(Bitset, UnionIntersectionDifference) {
  DynamicBitset a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));
  const DynamicBitset d = a.minus(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(Bitset, SerializationWords) {
  DynamicBitset a(70);
  a.set(3);
  a.set(69);
  DynamicBitset b;
  b.assign_words(70, a.words());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace fu::support
