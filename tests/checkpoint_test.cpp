// Checkpoint shards must be paranoid: a shard that is truncated, corrupt,
// or written under a different SurveyKey can never leak into a resumed
// survey — and a resume must reproduce the uninterrupted run bit for bit.
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "crawler/serialize.h"
#include "sched/checkpoint.h"
#include "test_util.h"

namespace fu {
namespace {

namespace fs = std::filesystem;

// Fresh scratch directory per test.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fu_ckpt_" + std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }
  std::vector<fs::path> shard_files() const {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
  }

  fs::path dir_;
};

// ----------------------------------------------------------- raw shards --

TEST_F(CheckpointTest, RoundTripsRecordsAcrossFlushes) {
  {
    sched::ShardWriter writer(dir(), "hdr", /*flush_every=*/2);
    writer.add(3, "three");
    writer.add(1, "one");   // auto-flush at 2
    writer.add(9, "nine");
    EXPECT_TRUE(writer.flush());
    EXPECT_EQ(writer.shards_written(), 2u);
    EXPECT_TRUE(writer.ok());
  }
  const auto records = sched::load_shards(dir(), "hdr");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].index, 3u);
  EXPECT_EQ(records[0].payload, "three");
  EXPECT_EQ(records[1].index, 1u);
  EXPECT_EQ(records[2].payload, "nine");
}

TEST_F(CheckpointTest, EmptyBufferWritesNoShard) {
  sched::ShardWriter writer(dir(), "hdr");
  EXPECT_TRUE(writer.flush());
  EXPECT_EQ(writer.shards_written(), 0u);
  EXPECT_TRUE(shard_files().empty());
}

TEST_F(CheckpointTest, MismatchedHeaderIsRejected) {
  {
    sched::ShardWriter writer(dir(), "seed=1", 8);
    writer.add(0, "payload");
  }
  EXPECT_TRUE(sched::load_shards(dir(), "seed=2").empty());
  EXPECT_EQ(sched::load_shards(dir(), "seed=1").size(), 1u);
}

TEST_F(CheckpointTest, TruncatedShardIsRejectedWhole) {
  {
    sched::ShardWriter writer(dir(), "hdr", 8);
    writer.add(0, "first payload");
    writer.add(1, "second payload");
  }
  const auto files = shard_files();
  ASSERT_EQ(files.size(), 1u);
  const auto full_size = fs::file_size(files[0]);
  fs::resize_file(files[0], full_size - 5);
  EXPECT_TRUE(sched::load_shards(dir(), "hdr").empty());
}

TEST_F(CheckpointTest, CorruptRecordLengthIsRejected) {
  {
    sched::ShardWriter writer(dir(), "hdr", 8);
    writer.add(0, "payload");
  }
  const auto files = shard_files();
  ASSERT_EQ(files.size(), 1u);
  // Blow up the payload-length field (the record tail is length + payload +
  // checksum); an absurd length must not be trusted.
  std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-static_cast<std::streamoff>(8 + 7 + 8), std::ios::end);
  const char big[8] = {'\xff', '\xff', '\xff', '\xff',
                       '\xff', '\xff', '\xff', '\x7f'};
  f.write(big, 8);
  f.close();
  EXPECT_TRUE(sched::load_shards(dir(), "hdr").empty());
}

TEST_F(CheckpointTest, PayloadBitFlipIsRejected) {
  {
    sched::ShardWriter writer(dir(), "hdr", 8);
    writer.add(0, "payload");
  }
  const auto files = shard_files();
  ASSERT_EQ(files.size(), 1u);
  // Flip one byte *inside* the payload: the file stays structurally valid
  // (same lengths, same framing), so only the checksum can catch it.
  std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(-static_cast<std::streamoff>(7 + 8), std::ios::end);
  f.put('X');
  f.close();
  EXPECT_TRUE(sched::load_shards(dir(), "hdr").empty());
}

TEST_F(CheckpointTest, TrailingGarbageIsRejected) {
  {
    sched::ShardWriter writer(dir(), "hdr", 8);
    writer.add(0, "payload");
  }
  const auto files = shard_files();
  ASSERT_EQ(files.size(), 1u);
  std::ofstream(files[0], std::ios::binary | std::ios::app) << "junk";
  EXPECT_TRUE(sched::load_shards(dir(), "hdr").empty());
}

TEST_F(CheckpointTest, OneBadShardDoesNotPoisonTheRest) {
  {
    sched::ShardWriter writer(dir(), "hdr", 1);
    writer.add(0, "a");
    writer.add(1, "b");
  }
  auto files = shard_files();
  ASSERT_EQ(files.size(), 2u);
  fs::resize_file(files[0], 4);  // kill the first shard only
  const auto records = sched::load_shards(dir(), "hdr");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "b");
}

TEST_F(CheckpointTest, SecondWriterContinuesNumbering) {
  {
    sched::ShardWriter writer(dir(), "hdr", 1);
    writer.add(0, "first run");
  }
  {
    sched::ShardWriter writer(dir(), "hdr", 1);
    writer.add(1, "second run");
  }
  EXPECT_EQ(shard_files().size(), 2u);
  EXPECT_EQ(sched::load_shards(dir(), "hdr").size(), 2u);
}

// ------------------------------------------------------ adaptive cadence --

TEST_F(CheckpointTest, ByteCadenceCutsAShardWhenPayloadAccumulates) {
  sched::FlushCadence cadence;
  cadence.records = 1000;  // never reached
  cadence.bytes = 10;
  sched::ShardWriter writer(dir(), "hdr", cadence);
  writer.add(0, "four");  // 4 bytes buffered: under the bound
  EXPECT_EQ(writer.shards_written(), 0u);
  writer.add(1, "sixteen payload!");  // 20 total: bound tripped
  EXPECT_EQ(writer.shards_written(), 1u);
  // The byte counter resets with the buffer.
  writer.add(2, "x");
  EXPECT_EQ(writer.shards_written(), 1u);
  EXPECT_TRUE(writer.flush());
  EXPECT_EQ(sched::load_shards(dir(), "hdr").size(), 3u);
}

TEST_F(CheckpointTest, TimeCadenceCutsAShardOnceTheDeadlinePasses) {
  sched::FlushCadence cadence;
  cadence.records = 1000;
  cadence.seconds = 0.05;
  sched::ShardWriter writer(dir(), "hdr", cadence);
  writer.add(0, "early");
  EXPECT_EQ(writer.shards_written(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  writer.add(1, "late");  // deadline passed: both records flush together
  EXPECT_EQ(writer.shards_written(), 1u);
  const auto records = sched::load_shards(dir(), "hdr");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "early");
  EXPECT_EQ(records[1].payload, "late");
}

TEST_F(CheckpointTest, AllCadenceBoundsDisabledFlushesEveryAdd) {
  sched::ShardWriter writer(dir(), "hdr", sched::FlushCadence{0, 0, 0});
  writer.add(0, "a");
  writer.add(1, "b");
  EXPECT_EQ(writer.shards_written(), 2u);
}

TEST_F(CheckpointTest, LaterShardWinsOnDuplicateIndex) {
  {
    sched::ShardWriter writer(dir(), "hdr", 1);
    writer.add(5, "old");
    writer.add(5, "new");
  }
  const auto records = sched::load_shards(dir(), "hdr");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records.back().payload, "new");  // replay order = last wins
}

// ------------------------------------------------------ survey outcomes --

TEST_F(CheckpointTest, SiteOutcomeEncodingRoundTrips) {
  crawler::SiteOutcome outcome;
  outcome.responded = true;
  outcome.measured = true;
  outcome.failed = false;
  outcome.attempts = 2;
  outcome.invocations = 12345;
  outcome.pages_visited = 13;
  outcome.scripts_blocked = 4;
  for (auto& bits : outcome.features) bits = support::DynamicBitset(100);
  outcome.features[0].set(7);
  outcome.features[1].set(99);
  outcome.default_passes.resize(2, support::DynamicBitset(100));
  outcome.default_passes[1].set(42);

  crawler::SiteOutcome decoded;
  ASSERT_TRUE(crawler::decode_site_outcome(
      crawler::encode_site_outcome(outcome), decoded));
  EXPECT_TRUE(decoded == outcome);
  EXPECT_EQ(decoded.attempts, 2);

  // Truncation at any point must fail, never half-fill.
  const std::string bytes = crawler::encode_site_outcome(outcome);
  EXPECT_FALSE(crawler::decode_site_outcome(
      bytes.substr(0, bytes.size() / 2), decoded));
  EXPECT_FALSE(crawler::decode_site_outcome(bytes + "x", decoded));
}

TEST_F(CheckpointTest, FailedOutcomeSurvivesTheSurveyCacheFile) {
  crawler::SurveyResults results = fu::test::small_survey();  // copy
  results.sites[5] = crawler::SiteOutcome();
  results.sites[5].failed = true;
  results.sites[5].attempts = 3;
  results.sites[5].error = "browser exploded: out of fuel";

  const std::string path = (dir_ / "survey.bin").string();
  ASSERT_TRUE(crawler::save_survey(results, 0x50e11edULL, path));
  const auto loaded = crawler::load_survey(
      *results.web, crawler::key_of(results, 0x50e11edULL), path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->sites[5].failed);
  EXPECT_EQ(loaded->sites[5].attempts, 3);
  EXPECT_EQ(loaded->sites[5].error, "browser exploded: out of fuel");
  EXPECT_EQ(loaded->sites_failed(), 1);
}

// -------------------------------------------------------------- resume --

const net::SyntheticWeb& resume_web() {
  static const net::SyntheticWeb kWeb = [] {
    net::SyntheticWeb::Config config;
    config.site_count = 30;
    return net::SyntheticWeb(fu::test::shared_catalog(), config);
  }();
  return kWeb;
}

crawler::SurveyOptions resume_options() {
  crawler::SurveyOptions options;
  options.passes = 2;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.threads = 2;
  return options;
}

TEST_F(CheckpointTest, InterruptedSurveyResumesToTheIdenticalRun) {
  const crawler::SurveyResults uninterrupted =
      run_survey(resume_web(), resume_options());

  // "Interrupt" the survey: sites >= 15 die on every attempt, so only the
  // first half reaches the checkpoint shards.
  crawler::SurveyOptions first = resume_options();
  first.checkpoint_dir = dir();
  first.checkpoint_every = 4;
  first.fault_injection = [](std::size_t site, int) {
    if (site >= 15) throw std::runtime_error("simulated interruption");
  };
  const crawler::SurveyResults interrupted = run_survey(resume_web(), first);
  EXPECT_EQ(interrupted.sites_failed(), 15);
  EXPECT_FALSE(shard_files().empty());

  // Resume. The injection now kills any *restored* site that gets
  // recrawled, proving checkpointed sites are loaded, not re-run.
  crawler::SurveyOptions second = resume_options();
  second.checkpoint_dir = dir();
  second.resume = true;
  second.fault_injection = [](std::size_t site, int) {
    if (site < 15) throw std::runtime_error("recrawled a restored site");
  };
  const crawler::SurveyResults resumed = run_survey(resume_web(), second);

  EXPECT_EQ(resumed.sites_failed(), 0);
  ASSERT_EQ(resumed.sites.size(), uninterrupted.sites.size());
  for (std::size_t i = 0; i < resumed.sites.size(); ++i) {
    EXPECT_TRUE(resumed.sites[i] == uninterrupted.sites[i]) << "site " << i;
  }
}

TEST_F(CheckpointTest, ShardsFromADifferentSeedAreIgnoredOnResume) {
  crawler::SurveyOptions first = resume_options();
  first.checkpoint_dir = dir();
  const crawler::SurveyResults original = run_survey(resume_web(), first);
  EXPECT_GT(original.sites_measured(), 0);
  EXPECT_FALSE(shard_files().empty());

  // Same directory, different seed: nothing may be restored, so the
  // injection (which fails anything actually crawled) fails every site.
  crawler::SurveyOptions second = resume_options();
  second.seed = first.seed ^ 0xdeadbeefULL;
  second.checkpoint_dir = dir();
  second.resume = true;
  second.fault_injection = [](std::size_t, int) {
    throw std::runtime_error("crawled");
  };
  const crawler::SurveyResults resumed = run_survey(resume_web(), second);
  EXPECT_EQ(static_cast<std::size_t>(resumed.sites_failed()),
            resumed.sites.size());
}

TEST_F(CheckpointTest, ResumeWithEmptyDirectoryJustCrawls) {
  crawler::SurveyOptions options = resume_options();
  options.checkpoint_dir = dir();
  options.resume = true;
  const crawler::SurveyResults results = run_survey(resume_web(), options);
  EXPECT_EQ(results.sites_failed(), 0);
  EXPECT_GT(results.sites_measured(), 0);
}

// ------------------------------------------------------------ compaction --

TEST_F(CheckpointTest, ShardHeadersListsDistinctHeadersInOrder) {
  const std::string dir_a = dir() + "/a";
  {
    sched::ShardWriter first(dir_a, "alpha", /*flush_every=*/1);
    first.add(0, "x");
    first.add(1, "y");
  }
  {
    sched::ShardWriter second(dir_a, "beta", /*flush_every=*/1);
    second.add(2, "z");
  }
  const std::vector<std::string> headers = sched::shard_headers(dir_a);
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0], "alpha");
  EXPECT_EQ(headers[1], "beta");
  EXPECT_TRUE(sched::shard_headers(dir() + "/missing").empty());
}

TEST_F(CheckpointTest, CompactMergesDirsWithLaterDirWinning) {
  const std::string dir_a = dir() + "/a";
  const std::string dir_b = dir() + "/b";
  const std::string out = dir() + "/out";
  {
    sched::ShardWriter writer(dir_a, "key", /*flush_every=*/1);
    writer.add(0, "a0");
    writer.add(1, "a1");
    writer.add(2, "a2");
  }
  {
    sched::ShardWriter writer(dir_b, "key", /*flush_every=*/1);
    writer.add(1, "b1");  // must override a1
    writer.add(3, "b3");
  }
  std::string error;
  ASSERT_TRUE(sched::compact_shards({dir_a, dir_b}, out, &error)) << error;

  // One output shard, each index once, ascending, later dir's record kept.
  std::size_t shard_count = 0;
  for (const auto& entry : fs::directory_iterator(out)) {
    shard_count += entry.path().extension() == ".fush" ? 1 : 0;
  }
  EXPECT_EQ(shard_count, 1u);
  const auto records = sched::load_shards(out, "key");
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].payload, "a0");
  EXPECT_EQ(records[1].payload, "b1");
  EXPECT_EQ(records[2].payload, "a2");
  EXPECT_EQ(records[3].payload, "b3");
}

TEST_F(CheckpointTest, CompactRefusesMixedKeys) {
  const std::string dir_a = dir() + "/a";
  const std::string dir_b = dir() + "/b";
  const std::string out = dir() + "/out";
  {
    sched::ShardWriter writer(dir_a, "key-one", /*flush_every=*/1);
    writer.add(0, "x");
  }
  {
    sched::ShardWriter writer(dir_b, "key-two", /*flush_every=*/1);
    writer.add(0, "y");
  }
  std::string error;
  EXPECT_FALSE(sched::compact_shards({dir_a, dir_b}, out, &error));
  EXPECT_NE(error.find("different survey key"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(out));

  // Mixed headers *within* one directory are just as fatal.
  {
    sched::ShardWriter writer(dir_a, "key-two", /*flush_every=*/1);
    writer.add(1, "z");
  }
  EXPECT_FALSE(sched::compact_shards({dir_a}, out, &error));
  EXPECT_NE(error.find("mixed"), std::string::npos) << error;
}

TEST_F(CheckpointTest, CompactRefusesEmptyInputs) {
  std::string error;
  EXPECT_FALSE(sched::compact_shards({}, dir() + "/out", &error));
  EXPECT_FALSE(
      sched::compact_shards({dir() + "/nothing"}, dir() + "/out", &error));
  EXPECT_NE(error.find("no readable shards"), std::string::npos) << error;
}

TEST_F(CheckpointTest, CompactedShardsResumeIdentically) {
  // A survey checkpointed across many small shards, compacted, must restore
  // the exact same outcomes from the compact dir.
  crawler::SurveyOptions options = resume_options();
  options.checkpoint_dir = dir() + "/raw";
  options.checkpoint_every = 1;  // one shard per site: worst case
  const crawler::SurveyResults fresh = run_survey(resume_web(), options);

  const std::string out = dir() + "/compact";
  std::string error;
  ASSERT_TRUE(sched::compact_shards({options.checkpoint_dir}, out, &error))
      << error;

  crawler::SurveyOptions from_compact = resume_options();
  from_compact.checkpoint_dir = out;
  from_compact.resume = true;
  from_compact.fault_injection = [](std::size_t, int) {
    throw std::runtime_error("resume should not crawl anything");
  };
  const crawler::SurveyResults resumed =
      run_survey(resume_web(), from_compact);
  ASSERT_EQ(resumed.sites.size(), fresh.sites.size());
  for (std::size_t i = 0; i < fresh.sites.size(); ++i) {
    EXPECT_TRUE(resumed.sites[i] == fresh.sites[i]) << "site " << i;
  }
}

}  // namespace
}  // namespace fu
