// The scheduler's contract: every job runs exactly once (per attempt),
// failures are contained and retried, stealing keeps the tail parallel —
// and none of it may change survey results by so much as a bit.
#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/json.h"
#include "obs/trace.h"
#include "sched/progress.h"
#include "sched/pool.h"
#include "sched/worksteal.h"
#include "test_util.h"

namespace fu::sched {
namespace {

// ------------------------------------------------------------ worksteal --

TEST(WorkSteal, EveryJobRunsExactlyOnce) {
  constexpr std::size_t kJobs = 500;
  std::vector<std::atomic<int>> runs(kJobs);
  SchedulerOptions options;
  options.threads = 8;
  const RunReport report = run_jobs(
      kJobs, [&](std::size_t i, int) { runs[i].fetch_add(1); }, options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.jobs.size(), kJobs);
  EXPECT_EQ(report.threads, 8u);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "job " << i;
  }
  for (const JobReport& job : report.jobs) {
    EXPECT_TRUE(job.ok);
    EXPECT_EQ(job.attempts, 1);
  }
}

TEST(WorkSteal, ZeroJobsIsANoop) {
  const RunReport report =
      run_jobs(0, [](std::size_t, int) { FAIL() << "job ran"; });
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_TRUE(report.all_ok());
}

TEST(WorkSteal, StealsRebalanceASkewedLoad) {
  // Block distribution puts jobs [0, 16) on worker 0; they are slow, the
  // rest are free. The other workers must drain their blocks and then
  // steal from worker 0's deque.
  constexpr std::size_t kJobs = 64;
  std::vector<std::atomic<int>> runs(kJobs);
  SchedulerOptions options;
  options.threads = 4;
  const RunReport report = run_jobs(
      kJobs,
      [&](std::size_t i, int) {
        runs[i].fetch_add(1);
        if (i < kJobs / 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      },
      options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_GT(report.steals, 0u);
  EXPECT_GT(report.jobs_stolen, 0u);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "job " << i;
  }
}

TEST(WorkSteal, MeterSeesPerWorkerStats) {
  // Same skewed load as above, but with a ProgressMeter attached: the
  // scheduler must size the worker table and the per-worker steal totals
  // must add up to the run report's.
  constexpr std::size_t kJobs = 64;
  ProgressMeter meter(kJobs);
  SchedulerOptions options;
  options.threads = 4;
  options.progress = &meter;
  const RunReport report = run_jobs(
      kJobs,
      [&](std::size_t i, int) {
        if (i < kJobs / 4) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      },
      options);
  EXPECT_TRUE(report.all_ok());

  const ProgressMeter::Snapshot snap = meter.snapshot();
  ASSERT_EQ(snap.workers.size(), 4u);
  std::uint64_t steals = 0, stolen = 0;
  for (const ProgressMeter::WorkerStat& w : snap.workers) {
    steals += w.steals;
    stolen += w.jobs_stolen;
    EXPECT_EQ(w.queue_depth, 0u);  // everything drained
  }
  EXPECT_EQ(steals, report.steals);
  EXPECT_EQ(stolen, report.jobs_stolen);
}

TEST(WorkSteal, TransientFaultIsRetriedToSuccess) {
  constexpr std::size_t kJobs = 32;
  std::vector<std::atomic<int>> runs(kJobs);
  SchedulerOptions options;
  options.threads = 4;
  options.max_attempts = 3;
  const RunReport report = run_jobs(
      kJobs,
      [&](std::size_t i, int attempt) {
        runs[i].fetch_add(1);
        if (i % 2 == 1 && attempt == 0) {
          throw std::runtime_error("transient");
        }
      },
      options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.retries, kJobs / 2);
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(report.jobs[i].attempts, i % 2 == 1 ? 2 : 1);
    EXPECT_EQ(runs[i].load(), i % 2 == 1 ? 2 : 1);
  }
}

TEST(WorkSteal, FinalFailureIsContainedNotFatal) {
  SchedulerOptions options;
  options.threads = 2;
  options.max_attempts = 2;
  const RunReport report = run_jobs(
      8,
      [](std::size_t i, int) {
        if (i == 3) throw std::runtime_error("boom 3");
      },
      options);
  EXPECT_FALSE(report.all_ok());
  EXPECT_EQ(report.failed_count(), 1u);
  EXPECT_FALSE(report.jobs[3].ok);
  EXPECT_EQ(report.jobs[3].attempts, 2);
  EXPECT_EQ(report.jobs[3].error, "boom 3");
  EXPECT_EQ(report.retries, 1u);
  for (std::size_t i = 0; i < 8; ++i) {
    if (i != 3) {
      EXPECT_TRUE(report.jobs[i].ok) << i;
    }
  }
}

TEST(WorkSteal, NonStdExceptionIsContained) {
  const RunReport report =
      run_jobs(1, [](std::size_t, int) { throw 42; });
  EXPECT_FALSE(report.jobs[0].ok);
  EXPECT_EQ(report.jobs[0].error, "unknown exception");
}

TEST(WorkSteal, ObserverSeesEveryJob) {
  class Counter : public Observer {
   public:
    void on_job_done(std::size_t, bool ok, int, const std::string&) override {
      (ok ? done_ : failed_).fetch_add(1);
    }
    std::atomic<int> done_{0};
    std::atomic<int> failed_{0};
  } counter;
  SchedulerOptions options;
  options.threads = 4;
  run_jobs(
      40,
      [](std::size_t i, int) {
        if (i == 7) throw std::runtime_error("x");
      },
      options, &counter);
  EXPECT_EQ(counter.done_.load(), 39);
  EXPECT_EQ(counter.failed_.load(), 1);
}

TEST(WorkSteal, StripedPolicyRunsEverythingToo) {
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> runs(kJobs);
  SchedulerOptions options;
  options.threads = 4;
  options.policy = SchedulerOptions::Policy::kStriped;
  const RunReport report = run_jobs(
      kJobs, [&](std::size_t i, int) { runs[i].fetch_add(1); }, options);
  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.steals, 0u);
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(runs[i].load(), 1);
}

// ----------------------------------------------------- persistent pool --

TEST(Pool, BatchesRunBackToBackWithoutRespawn) {
  // The daemon's life: one pool, many surveys. Every batch must run every
  // job exactly once on the same worker set.
  Pool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  for (int batch = 0; batch < 5; ++batch) {
    constexpr std::size_t kJobs = 100;
    std::vector<std::atomic<int>> runs(kJobs);
    const RunReport report =
        pool.run(kJobs, [&](std::size_t i, int) { runs[i].fetch_add(1); });
    EXPECT_TRUE(report.all_ok());
    EXPECT_EQ(report.threads, 4u);
    for (std::size_t i = 0; i < kJobs; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << "batch " << batch << " job " << i;
    }
  }
}

TEST(Pool, ConcurrentBatchesShareTheWorkers) {
  // Two threads submit batches at once; both complete, neither loses or
  // duplicates a job. This is the "multi-survey submission without draining
  // the pool" contract the daemon depends on.
  Pool pool(4);
  constexpr std::size_t kJobs = 200;
  std::vector<std::atomic<int>> runs_a(kJobs), runs_b(kJobs);
  RunReport report_a, report_b;
  std::thread submit_a([&] {
    report_a = pool.run(kJobs, [&](std::size_t i, int) {
      runs_a[i].fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  });
  std::thread submit_b([&] {
    report_b = pool.run(kJobs, [&](std::size_t i, int) {
      runs_b[i].fetch_add(1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  });
  submit_a.join();
  submit_b.join();
  EXPECT_TRUE(report_a.all_ok());
  EXPECT_TRUE(report_b.all_ok());
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(runs_a[i].load(), 1) << "batch a job " << i;
    EXPECT_EQ(runs_b[i].load(), 1) << "batch b job " << i;
  }
}

TEST(Pool, CancelAbandonsQueuedJobsButAccountsForAll) {
  // Flip the cancel flag from inside an early job: jobs not yet started are
  // reported "cancelled" without running, and run() still returns a report
  // covering every index.
  Pool pool(2);
  constexpr std::size_t kJobs = 64;
  std::atomic<bool> cancel{false};
  std::atomic<int> executed{0};
  BatchOptions options;
  options.cancel = &cancel;
  const RunReport report = pool.run(
      kJobs,
      [&](std::size_t i, int) {
        executed.fetch_add(1);
        if (i == 0) cancel.store(true);
        // Every job takes real time, so most of the batch is still queued
        // when job 0 (front of worker 0's block) flips the flag.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      },
      options);
  EXPECT_EQ(report.jobs.size(), kJobs);
  EXPECT_FALSE(report.all_ok());
  std::size_t cancelled = 0;
  for (const JobReport& job : report.jobs) {
    if (job.ok) continue;
    EXPECT_EQ(job.error, "cancelled");
    EXPECT_EQ(job.attempts, 0);
    ++cancelled;
  }
  EXPECT_GT(cancelled, 0u);
  EXPECT_EQ(static_cast<std::size_t>(executed.load()), kJobs - cancelled);
}

TEST(Pool, CancelSetBeforeRunDiscardsEverything) {
  Pool pool(2);
  std::atomic<bool> cancel{true};
  BatchOptions options;
  options.cancel = &cancel;
  const RunReport report = pool.run(
      16, [&](std::size_t, int) { FAIL() << "job ran"; }, options);
  EXPECT_EQ(report.jobs.size(), 16u);
  EXPECT_EQ(report.failed_count(), 16u);
  for (const JobReport& job : report.jobs) EXPECT_EQ(job.error, "cancelled");
}

TEST(Pool, ObserverSeesCancelledJobsToo) {
  Pool pool(2);
  std::atomic<bool> cancel{true};
  struct Count : Observer {
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> cancelled{0};
    void on_job_done(std::size_t, bool ok, int,
                     const std::string& error) override {
      done.fetch_add(1);
      if (!ok && error == "cancelled") cancelled.fetch_add(1);
    }
  } count;
  BatchOptions options;
  options.cancel = &cancel;
  pool.run(32, [](std::size_t, int) {}, options, &count);
  EXPECT_EQ(count.done.load(), 32u);
  EXPECT_EQ(count.cancelled.load(), 32u);
}

TEST(Pool, IdlePoolDestructsPromptly) {
  const auto start = std::chrono::steady_clock::now();
  {
    Pool pool(4);
    pool.run(8, [](std::size_t, int) {});
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 2.0);  // workers must not sleep through shutdown
}

// ------------------------------------------------------------- progress --

TEST(Progress, MeterTracksDoneSkippedAndUnits) {
  ProgressMeter meter(10);
  meter.job_skipped();
  meter.job_skipped();
  meter.job_done(100);
  meter.job_done(50);
  const ProgressMeter::Snapshot snap = meter.snapshot();
  EXPECT_EQ(snap.done, 4u);
  EXPECT_EQ(snap.skipped, 2u);
  EXPECT_EQ(snap.total, 10u);
  EXPECT_EQ(snap.units, 150u);
  EXPECT_GT(snap.jobs_per_second, 0.0);
  EXPECT_GT(snap.units_per_second, 0.0);
  EXPECT_GT(snap.eta_seconds, 0.0);  // 6 jobs left
}

TEST(Progress, EtaIsZeroWhenFinished) {
  ProgressMeter meter(2);
  meter.job_done(1);
  meter.job_done(1);
  EXPECT_EQ(meter.snapshot().eta_seconds, 0.0);
}

TEST(Progress, EtaRateExcludesSkippedJobs) {
  // 100 of 102 jobs restored from a checkpoint instantly, one real job done
  // after ~20ms. The rate must come from the one executed job — if skips
  // leaked in, the rate would look ~100x too fast and the ETA for the last
  // job would collapse toward zero.
  ProgressMeter meter(102);
  for (int i = 0; i < 100; ++i) meter.job_skipped();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  meter.job_done(10);
  const ProgressMeter::Snapshot snap = meter.snapshot();
  ASSERT_GT(snap.elapsed_seconds, 0.0);
  EXPECT_LT(snap.jobs_per_second * snap.elapsed_seconds, 2.0);
  EXPECT_GT(snap.eta_seconds, snap.elapsed_seconds * 0.5);
}

TEST(Progress, MeterCountsFailedJobs) {
  ProgressMeter meter(4);
  meter.job_done(10);
  meter.job_failed();
  meter.job_failed();
  const ProgressMeter::Snapshot snap = meter.snapshot();
  EXPECT_EQ(snap.done, 3u);    // failed jobs are finished jobs
  EXPECT_EQ(snap.failed, 2u);
  EXPECT_EQ(snap.skipped, 0u);
}

TEST(Progress, FormatMentionsCountsAndResumes) {
  ProgressMeter::Snapshot snap;
  snap.done = 247;
  snap.total = 10000;
  snap.skipped = 40;
  snap.units_per_second = 1.25e6;
  snap.eta_seconds = 192;
  const std::string line = format_progress(snap);
  EXPECT_NE(line.find("247/10000 sites"), std::string::npos) << line;
  EXPECT_NE(line.find("(40 resumed)"), std::string::npos) << line;
  EXPECT_NE(line.find("1.2M inv/s"), std::string::npos) << line;
  EXPECT_NE(line.find("eta 3m12s"), std::string::npos) << line;
  EXPECT_EQ(line.find("failed"), std::string::npos) << line;  // only if > 0

  snap.failed = 3;
  const std::string with_failed = format_progress(snap);
  EXPECT_NE(with_failed.find("(3 failed)"), std::string::npos) << with_failed;
}

TEST(Progress, StallDetectionFlipsOncePerEpisode) {
  ProgressMeter meter(10);
  meter.set_stall_window(0.03);
  meter.job_done(1);

  // Within the window: healthy.
  ProgressMeter::Snapshot snap = meter.snapshot();
  EXPECT_FALSE(snap.stalled);
  EXPECT_EQ(snap.stall_events, 0u);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  snap = meter.snapshot();
  EXPECT_TRUE(snap.stalled);
  EXPECT_EQ(snap.stall_events, 1u);
  EXPECT_GE(snap.seconds_since_last_done, 0.03);
  EXPECT_DOUBLE_EQ(snap.stall_window_seconds, 0.03);

  // Repeated observation of the same episode does not re-count it.
  snap = meter.snapshot();
  EXPECT_TRUE(snap.stalled);
  EXPECT_EQ(snap.stall_events, 1u);

  // A completion ends the episode; the next gap is a new event.
  meter.job_done(1);
  snap = meter.snapshot();
  EXPECT_FALSE(snap.stalled);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  snap = meter.snapshot();
  EXPECT_TRUE(snap.stalled);
  EXPECT_EQ(snap.stall_events, 2u);

  // The stalled state shows up in the progress line.
  EXPECT_NE(format_progress(snap).find("STALLED"), std::string::npos);
}

TEST(Progress, InFlightSitesTrackSlowestFirst) {
  ProgressMeter meter(4);
  const int slow = meter.begin_job("slow.example");
  ASSERT_GE(slow, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  InFlightScope fast(&meter, "fast.example");

  ProgressMeter::Snapshot snap = meter.snapshot();
  ASSERT_EQ(snap.in_flight.size(), 2u);
  EXPECT_EQ(snap.in_flight[0].label, "slow.example");
  EXPECT_GE(snap.in_flight[0].seconds, snap.in_flight[1].seconds);

  meter.end_job(slow);
  snap = meter.snapshot();
  ASSERT_EQ(snap.in_flight.size(), 1u);
  EXPECT_EQ(snap.in_flight[0].label, "fast.example");

  // Null meter and slot exhaustion are both tolerated.
  InFlightScope none(nullptr, "ignored");
  meter.end_job(-1);
}

TEST(Progress, ProgressJsonCarriesEveryField) {
  ProgressMeter meter(10);
  meter.set_worker_count(2);
  meter.worker_queue_depth(0, 3);
  meter.worker_stole(1, 4);
  meter.job_done(100);
  meter.job_skipped();
  meter.job_failed();
  InFlightScope site(&meter, "busy.example");

  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::json_parse(progress_json(meter.snapshot()), doc, &error))
      << error;
  EXPECT_EQ(doc.number_or("done", -1), 3);
  EXPECT_EQ(doc.number_or("skipped", -1), 1);
  EXPECT_EQ(doc.number_or("failed", -1), 1);
  EXPECT_EQ(doc.number_or("total", -1), 10);
  EXPECT_EQ(doc.number_or("units", -1), 100);
  EXPECT_GE(doc.number_or("eta_seconds", -1), 0);

  const obs::JsonValue* workers = doc.find("workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_TRUE(workers->is_array());
  ASSERT_EQ(workers->array.size(), 2u);
  EXPECT_EQ(workers->array[0].number_or("queue_depth", -1), 3);
  EXPECT_EQ(workers->array[1].number_or("steals", -1), 1);
  EXPECT_EQ(workers->array[1].number_or("jobs_stolen", -1), 4);

  const obs::JsonValue* in_flight = doc.find("in_flight");
  ASSERT_NE(in_flight, nullptr);
  ASSERT_EQ(in_flight->array.size(), 1u);
  EXPECT_EQ(in_flight->array[0].string_or("site", ""), "busy.example");
}

TEST(Progress, HealthJsonJustifiesItsVerdict) {
  ProgressMeter meter(5);
  meter.set_stall_window(30);
  meter.job_done(1);
  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(health_json(meter.snapshot()), doc, nullptr));
  const obs::JsonValue* ok = doc.find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->boolean);
  EXPECT_EQ(doc.number_or("done", -1), 1);
  EXPECT_EQ(doc.number_or("total", -1), 5);
  EXPECT_EQ(doc.number_or("stall_window_seconds", -1), 30);
}

TEST(Progress, PrinterEmitsAtLeastAFinalLine) {
  ProgressMeter meter(1);
  std::ostringstream out;
  {
    ProgressPrinter printer(meter, out, std::chrono::milliseconds(10));
    meter.job_done(7);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_NE(out.str().find("1/1 sites"), std::string::npos) << out.str();
}

// In production the --progress printer (and the live endpoint) start
// snapshotting before run_survey resets the meter and the scheduler sizes
// the worker array; that overlap must be race-free. CI runs this under TSan,
// which flags the unsynchronized workers_ reallocation this locks against.
TEST(Progress, SnapshotRacesResetAndWorkerResizeSafely) {
  ProgressMeter meter(100);
  std::atomic<bool> stop{false};
  std::thread observer([&meter, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const ProgressMeter::Snapshot snap = meter.snapshot();
      // Whatever interleaving, the worker list is a coherent array.
      for (const ProgressMeter::WorkerStat& w : snap.workers) {
        EXPECT_LT(w.queue_depth, 1000u);
      }
    }
  });
  for (int round = 0; round < 200; ++round) {
    meter.reset(100);
    meter.set_stall_window(30);
    const std::size_t workers = 1 + static_cast<std::size_t>(round % 8);
    meter.set_worker_count(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      meter.worker_queue_depth(w, w);
    }
    meter.job_done(1);
  }
  stop.store(true);
  observer.join();
}

}  // namespace
}  // namespace fu::sched

// ------------------------------------------------- survey on the sched --

namespace fu::crawler {
namespace {

// A small but real web: every test below crawls it for real, so keep it
// modest (the full test_util::small_web survey is exercised elsewhere).
const net::SyntheticWeb& sched_web() {
  static const net::SyntheticWeb kWeb = [] {
    net::SyntheticWeb::Config config;
    config.site_count = 40;
    return net::SyntheticWeb(fu::test::shared_catalog(), config);
  }();
  return kWeb;
}

SurveyOptions fast_options() {
  SurveyOptions options;
  options.passes = 2;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  return options;
}

void expect_same_sites(const SurveyResults& a, const SurveyResults& b) {
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_TRUE(a.sites[i] == b.sites[i]) << "site " << i;
  }
}

TEST(SchedSurvey, BitIdenticalAcrossThreadCounts) {
  SurveyOptions options = fast_options();
  options.threads = 1;
  const SurveyResults one = run_survey(sched_web(), options);
  options.threads = 4;
  const SurveyResults four = run_survey(sched_web(), options);
  options.threads = 8;
  const SurveyResults eight = run_survey(sched_web(), options);
  EXPECT_GT(one.sites_measured(), 0);
  expect_same_sites(one, four);
  expect_same_sites(one, eight);
}

TEST(SchedSurvey, BitIdenticalWithTracingOnAcrossThreadCounts) {
  // Instrumentation reads clocks and bumps atomics but never touches the
  // RNG or outcomes — a traced run at any thread count must reproduce the
  // untraced single-threaded crawl exactly.
  SurveyOptions options = fast_options();
  options.threads = 1;
  const SurveyResults baseline = run_survey(sched_web(), options);

  for (const int threads : {1, 4, 8}) {
    obs::Tracer tracer;
    tracer.start();
    options.threads = threads;
    const SurveyResults traced = run_survey(sched_web(), options);
    const std::vector<obs::SpanRecord> records = tracer.stop();
    EXPECT_FALSE(records.empty()) << "threads=" << threads;
    expect_same_sites(baseline, traced);
  }
}

TEST(SchedSurvey, ThrowingSiteIsContainedAndReported) {
  SurveyOptions options = fast_options();
  options.threads = 4;
  options.fault_injection = [](std::size_t site, int) {
    if (site == 7) throw std::runtime_error("injected crawl fault");
  };
  const SurveyResults results = run_survey(sched_web(), options);

  ASSERT_EQ(results.sites.size(), sched_web().sites().size());
  EXPECT_EQ(results.sites_failed(), 1);
  const SiteOutcome& failed = results.sites[7];
  EXPECT_TRUE(failed.failed);
  EXPECT_FALSE(failed.measured);
  EXPECT_EQ(failed.error, "injected crawl fault");
  EXPECT_EQ(failed.attempts, 1);
  EXPECT_EQ(failed.invocations, 0u);

  // Every other site matches a fault-free run exactly.
  const SurveyResults clean = run_survey(sched_web(), fast_options());
  for (std::size_t i = 0; i < results.sites.size(); ++i) {
    if (i == 7) continue;
    EXPECT_TRUE(results.sites[i] == clean.sites[i]) << "site " << i;
  }
}

TEST(SchedSurvey, TransientFaultRetriesToTheExactCleanRun) {
  SurveyOptions options = fast_options();
  options.threads = 4;
  options.max_attempts = 2;
  options.fault_injection = [](std::size_t site, int attempt) {
    if (site == 7 && attempt == 0) throw std::runtime_error("first try dies");
  };
  const SurveyResults retried = run_survey(sched_web(), options);
  EXPECT_EQ(retried.sites_failed(), 0);
  EXPECT_EQ(retried.sites[7].attempts, 2);

  const SurveyResults clean = run_survey(sched_web(), fast_options());
  expect_same_sites(retried, clean);
}

TEST(SchedSurvey, ReseedOnRetryStillMeasuresTheSite) {
  SurveyOptions options = fast_options();
  options.max_attempts = 3;
  options.reseed_on_retry = true;
  options.fault_injection = [](std::size_t site, int attempt) {
    if (site == 3 && attempt < 2) throw std::runtime_error("flaky");
  };
  const SurveyResults results = run_survey(sched_web(), options);
  EXPECT_EQ(results.sites_failed(), 0);
  EXPECT_EQ(results.sites[3].attempts, 3);
  EXPECT_TRUE(results.sites[3].responded);
}

TEST(SchedSurvey, ProgressMeterObservesTheWholeRun) {
  sched::ProgressMeter meter;
  SurveyOptions options = fast_options();
  options.threads = 2;
  options.progress = &meter;
  const SurveyResults results = run_survey(sched_web(), options);
  const sched::ProgressMeter::Snapshot snap = meter.snapshot();
  EXPECT_EQ(snap.done, results.sites.size());
  EXPECT_EQ(snap.total, results.sites.size());
  EXPECT_EQ(snap.units, results.total_invocations());
  EXPECT_EQ(snap.failed, 0u);
}

TEST(SchedSurvey, FailedSitesShowUpInProgress) {
  sched::ProgressMeter meter;
  SurveyOptions options = fast_options();
  options.threads = 2;
  options.progress = &meter;
  options.fault_injection = [](std::size_t site, int) {
    if (site == 3 || site == 11) throw std::runtime_error("injected");
  };
  const SurveyResults results = run_survey(sched_web(), options);
  EXPECT_EQ(results.sites_failed(), 2);
  const sched::ProgressMeter::Snapshot snap = meter.snapshot();
  EXPECT_EQ(snap.done, results.sites.size());  // failures still finish
  EXPECT_EQ(snap.failed, 2u);
  EXPECT_NE(sched::format_progress(snap).find("(2 failed)"),
            std::string::npos);
}

}  // namespace
}  // namespace fu::crawler
