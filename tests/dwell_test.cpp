// Long-dwell semantics (§6.2 outliers): timers beyond the monkey's
// 30-second budget fire only for longer, human-style dwells.
#include <gtest/gtest.h>

#include "crawler/monkey.h"
#include "script/parser.h"
#include "test_util.h"

namespace fu::browser {
namespace {

const net::SyntheticWeb& web() { return fu::test::small_web(); }

const net::SitePlan& ok_site() {
  for (const net::SitePlan& site : web().sites()) {
    if (site.status == net::SiteStatus::kOk) return site;
  }
  throw std::logic_error("no healthy site");
}

void install_timers(BrowserSession& session) {
  auto program = script::parse_program(R"(
    var fired_fast = 0;
    var fired_slow = 0;
    window.setTimeout(function () { fired_fast = fired_fast + 1; }, 500);
    window.setTimeout(function () { fired_slow = fired_slow + 1; }, 60000);
  )");
  session.interpreter().execute(program);
}

double global_number(BrowserSession& session, const char* name) {
  const script::Value* v = session.interpreter().globals().lookup(name);
  return v == nullptr ? -1 : v->to_number();
}

TEST(LongDwell, ShortBudgetSkipsLongTimers) {
  BrowserConfig config;
  BrowserSession session(web(), config, 1);
  session.load_page(web().home_url(ok_site()));
  install_timers(session);

  session.run_timers();  // default 30 s budget
  EXPECT_EQ(global_number(session, "fired_fast"), 1);
  EXPECT_EQ(global_number(session, "fired_slow"), 0);

  // the long timer is still queued; a longer dwell reaches it
  session.run_timers(90'000);
  EXPECT_EQ(global_number(session, "fired_fast"), 1);
  EXPECT_EQ(global_number(session, "fired_slow"), 1);

  // and it fired exactly once
  session.run_timers(90'000);
  EXPECT_EQ(global_number(session, "fired_slow"), 1);
}

TEST(LongDwell, MonkeyNeverFiresThem) {
  BrowserConfig config;
  BrowserSession session(web(), config, 2);
  session.load_page(web().home_url(ok_site()));
  install_timers(session);

  support::Rng rng(7);
  for (int pass = 0; pass < 5; ++pass) {
    crawler::monkey_interact(session, rng);
  }
  EXPECT_EQ(global_number(session, "fired_fast"), 1);
  EXPECT_EQ(global_number(session, "fired_slow"), 0);
}

TEST(LongDwell, HumanModelFiresThem) {
  BrowserConfig config;
  BrowserSession session(web(), config, 3);
  session.load_page(web().home_url(ok_site()));
  install_timers(session);

  support::Rng rng(7);
  crawler::human_interact(session, rng);
  EXPECT_EQ(global_number(session, "fired_slow"), 1);
}

TEST(LongDwell, SomeSitesCarryLongDwellPlacements) {
  int long_dwell = 0;
  for (const net::SitePlan& site : web().sites()) {
    for (const net::StandardPlacement& p : site.placements) {
      if (p.trigger == net::Trigger::kLongDwell) {
        ++long_dwell;
        EXPECT_TRUE(p.sitewide);  // calibration: sitewide only
      }
    }
  }
  EXPECT_GT(long_dwell, 0);
}

TEST(SurveyDeterminism, ThreadCountDoesNotChangeResults) {
  crawler::SurveyOptions one;
  one.passes = 2;
  one.threads = 1;
  one.include_ad_only = false;
  one.include_tracking_only = false;
  crawler::SurveyOptions four = one;
  four.threads = 4;

  net::SyntheticWeb::Config config;
  config.site_count = 40;
  const net::SyntheticWeb small(fu::test::shared_catalog(), config);

  const auto a = run_survey(small, one);
  const auto b = run_survey(small, four);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].invocations, b.sites[i].invocations) << i;
    EXPECT_EQ(a.sites[i].features[0], b.sites[i].features[0]) << i;
    EXPECT_EQ(a.sites[i].features[1], b.sites[i].features[1]) << i;
  }
}

}  // namespace
}  // namespace fu::browser
