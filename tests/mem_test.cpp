// Tests for the memory-observability stack: per-domain byte accounting
// (balance, high-water marks, multi-thread safety), the accounting wired
// into the script heap and atom tables, the sampling allocation profiler
// (folded BYTES profiles ending in "mem:<domain>" leaves), the /memz
// endpoint, the peak-memory baseline gate behind `fu mem`, and the
// session-teardown script.heap_bytes gauge.
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "browser/session.h"
#include "catalog/catalog.h"
#include "net/web.h"
#include "obs/folded.h"
#include "obs/json.h"
#include "obs/mem.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server.h"
#include "script/atoms.h"
#include "script/value.h"

namespace fu::obs::mem {
namespace {

// ---------------------------------------------------------------------------
// Domain accounting

TEST(MemAccounting, AddSubBalances) {
  const std::int64_t before = current_bytes(Domain::kShards);
  add(Domain::kShards, 4096);
  EXPECT_EQ(current_bytes(Domain::kShards), before + 4096);
  sub(Domain::kShards, 4096);
  EXPECT_EQ(current_bytes(Domain::kShards), before);
}

TEST(MemAccounting, HighWaterRisesAndResets) {
  reset_high_water();
  const std::int64_t base = current_bytes(Domain::kSched);
  add(Domain::kSched, 1 << 20);
  const std::int64_t peak = high_water_bytes(Domain::kSched);
  EXPECT_GE(peak, base + (1 << 20));
  sub(Domain::kSched, 1 << 20);
  // Releasing never lowers the mark...
  EXPECT_GE(high_water_bytes(Domain::kSched), peak);
  // ...only an explicit reset does, and then only down to current.
  reset_high_water();
  EXPECT_EQ(high_water_bytes(Domain::kSched), current_bytes(Domain::kSched));
}

TEST(MemAccounting, EightThreadsBalanceExactly) {
  const std::int64_t before = current_bytes(Domain::kSched);
  std::vector<std::thread> pool;
  for (int t = 0; t < 8; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < 20'000; ++i) {
        add(Domain::kSched, 64);
        sub(Domain::kSched, 64);
      }
    });
  }
  for (std::thread& thread : pool) thread.join();
  EXPECT_EQ(current_bytes(Domain::kSched), before);
  EXPECT_GE(high_water_bytes(Domain::kSched), before + 64);
}

TEST(MemAccounting, ScopedBytesReturnsEverythingOnExit) {
  const std::int64_t before = current_bytes(Domain::kShards);
  {
    ScopedBytes scope(Domain::kShards, 100);
    scope.grow(28);
    EXPECT_EQ(scope.bytes(), 128u);
    EXPECT_EQ(current_bytes(Domain::kShards), before + 128);
  }
  EXPECT_EQ(current_bytes(Domain::kShards), before);
}

TEST(MemAccounting, HeapSlabsAccountedAndBalanced) {
  const std::int64_t before = current_bytes(Domain::kScriptHeap);
  {
    script::Heap heap;
    for (int i = 0; i < 2000; ++i) heap.make_object();
    EXPECT_GT(heap.bytes_used(), 0u);
    EXPECT_GE(heap.bytes_reserved(), heap.bytes_used());
    EXPECT_GE(current_bytes(Domain::kScriptHeap),
              before + static_cast<std::int64_t>(heap.bytes_reserved()));
  }
  EXPECT_EQ(current_bytes(Domain::kScriptHeap), before);
}

TEST(MemAccounting, AtomTableAccountedAndBalanced) {
  const std::int64_t before = current_bytes(Domain::kAtoms);
  {
    script::AtomTable atoms;
    for (int i = 0; i < 100; ++i) {
      atoms.intern("mem-test-atom-" + std::to_string(i));
    }
    EXPECT_GT(current_bytes(Domain::kAtoms), before);
  }
  EXPECT_EQ(current_bytes(Domain::kAtoms), before);
}

// ---------------------------------------------------------------------------
// Sampling allocation profiler

TEST(MemProfiler, FoldedBytesEndInDomainLeaf) {
  MemProfiler profiler(1);  // sample every tracked allocation
  profiler.start();
  std::thread worker([] {
    prof::set_thread_label("mem-test-worker");
    static const char* kStage = "mem-test-stage";
    StageFrame frame(kStage);
    for (int i = 0; i < 16; ++i) add(Domain::kShards, 1024);
    for (int i = 0; i < 16; ++i) sub(Domain::kShards, 1024);
  });
  worker.join();
  EXPECT_GE(profiler.samples(), 16u);
  const FoldedProfile profile = profiler.stop();
  // Period 1: every allocation sampled, weight == bytes.
  EXPECT_EQ(profile.total(), 16u * 1024u);
  bool saw = false;
  for (const auto& [stack, bytes] : profile.stacks) {
    EXPECT_NE(bytes, 0u);
    if (stack.rfind("mem-test-worker", 0) == 0 &&
        stack.find("mem-test-stage;mem:shards") != std::string::npos) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw) << profile.to_text();

  // The folded text round-trips through the shared parser, so every CPU
  // profile consumer (flamegraph, diff, fu mem) can read byte profiles.
  const FoldedProfile parsed = FoldedProfile::parse(profile.to_text());
  EXPECT_EQ(parsed.stacks, profile.stacks);

  const std::string summary = render_mem_summary(profile);
  EXPECT_NE(summary.find("shards"), std::string::npos) << summary;
  EXPECT_NE(summary.find("mem-test-stage"), std::string::npos) << summary;
  const std::string csv = mem_standards_csv(profile);
  EXPECT_EQ(csv.rfind("standard,bytes,pct\n", 0), 0u) << csv;
}

TEST(MemProfiler, SamplePeriodWeightsBytes) {
  MemProfiler profiler(4);
  profiler.start();
  for (int i = 0; i < 64; ++i) add(Domain::kShards, 100);
  for (int i = 0; i < 64; ++i) sub(Domain::kShards, 100);
  const FoldedProfile profile = profiler.stop();
  // 64 allocations at period 4 = 16 samples, each weighted 100 x 4.
  EXPECT_EQ(profile.total(), 64u * 100u);
}

TEST(MemProfiler, SecondLiveThrowsAndStopIsIdempotent) {
  MemProfiler first;
  first.start();
  EXPECT_TRUE(first.active());
  MemProfiler second;
  EXPECT_THROW(second.start(), std::logic_error);
  const FoldedProfile once = first.stop();
  EXPECT_EQ(first.stop().stacks, once.stacks);
  // With the first stopped, the slot frees up again.
  MemProfiler third;
  third.start();
  third.stop();
}

TEST(MemProfiler, MayRunAlongsideCpuProfiler) {
  Profiler cpu(997.0);
  cpu.start();
  MemProfiler memory(1);
  memory.start();
  add(Domain::kShards, 256);
  sub(Domain::kShards, 256);
  EXPECT_GE(memory.stop().total(), 256u);
  cpu.stop();
}

// ---------------------------------------------------------------------------
// /memz and the registry gauges

TEST(Memz, JsonCarriesEveryDomainAndRss) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(memz_json(), doc, &error)) << error;
  const JsonValue* domains = doc.find("domains");
  ASSERT_NE(domains, nullptr);
  ASSERT_TRUE(domains->is_object());
  EXPECT_EQ(domains->object.size(), kDomainCount);
  for (const char* name : {"script-heap", "atoms", "snapshot", "shards",
                           "sched", "trace", "net-corpus"}) {
    const JsonValue* cell = domains->find(name);
    ASSERT_NE(cell, nullptr) << name;
    EXPECT_NE(cell->find("current"), nullptr) << name;
    EXPECT_NE(cell->find("high_water"), nullptr) << name;
  }
  ASSERT_NE(doc.find("rss_bytes"), nullptr);
  ASSERT_NE(doc.find("rss_peak_bytes"), nullptr);
#if defined(__linux__)
  EXPECT_GT(doc.number_or("rss_bytes", -1), 0);
  EXPECT_GE(doc.number_or("rss_peak_bytes", -1),
            doc.number_or("rss_bytes", -1));
#endif
}

TEST(Memz, PublishMetricsFillsGauges) {
  add(Domain::kShards, 512);
  publish_metrics();
  sub(Domain::kShards, 512);
  EXPECT_GE(Registry::global().gauge("mem.shards_bytes").value(), 512);
#if defined(__linux__)
  EXPECT_GT(Registry::global().gauge("mem.rss_bytes").value(), 0);
#endif
}

TEST(Memz, ServedByObsServer) {
  Registry registry;
  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  Server server(std::move(options));
  ASSERT_TRUE(server.ok()) << server.error();

  int status = 0;
  std::string body, error;
  ASSERT_TRUE(
      http_get("127.0.0.1", server.port(), "/memz", status, body, &error))
      << error;
  EXPECT_EQ(status, 200) << body;
  JsonValue doc;
  ASSERT_TRUE(json_parse(body, doc, &error)) << error << "\n" << body;
  EXPECT_NE(doc.find("domains"), nullptr);
  EXPECT_NE(doc.find("rss_bytes"), nullptr);
}

// ---------------------------------------------------------------------------
// Baseline gate

constexpr const char* kMemzDoc =
    "{\"domains\": {"
    "\"script-heap\": {\"current\": 100, \"high_water\": 1048576}, "
    "\"atoms\": {\"current\": 0, \"high_water\": 2048}}, "
    "\"rss_bytes\": 1000, \"rss_peak_bytes\": 5000000}";

TEST(MemBaseline, RoundTripsAndPassesAgainstItself) {
  std::string baseline;
  std::string error;
  ASSERT_TRUE(baseline_from_json(kMemzDoc, baseline, &error)) << error;
  JsonValue doc;
  ASSERT_TRUE(json_parse(baseline, doc, &error)) << error << "\n" << baseline;
  const JsonValue* domains = doc.find("domains");
  ASSERT_NE(domains, nullptr);
  EXPECT_EQ(domains->number_or("script-heap", -1), 1048576);
  EXPECT_EQ(doc.number_or("rss_peak_bytes", -1), 5000000);

  const BaselineReport report = check_baseline(baseline, kMemzDoc, 0.5);
  EXPECT_FALSE(report.regressed) << report.text;
}

TEST(MemBaseline, GateTripsOnARealGrowth) {
  std::string baseline;
  ASSERT_TRUE(baseline_from_json(kMemzDoc, baseline));
  // script-heap grew 100x — far beyond +50% plus the 1 MiB noise floor.
  const std::string grown =
      "{\"domains\": {"
      "\"script-heap\": {\"current\": 0, \"high_water\": 104857600}, "
      "\"atoms\": {\"current\": 0, \"high_water\": 2048}}, "
      "\"rss_bytes\": 1000, \"rss_peak_bytes\": 5000000}";
  const BaselineReport report = check_baseline(baseline, grown, 0.5);
  EXPECT_TRUE(report.regressed);
  EXPECT_NE(report.text.find("script-heap"), std::string::npos)
      << report.text;

  const std::string diff = render_domains_diff(kMemzDoc, grown);
  EXPECT_NE(diff.find("script-heap"), std::string::npos) << diff;
}

TEST(MemBaseline, SmallNoiseStaysUnderTheFloor) {
  std::string baseline;
  ASSERT_TRUE(baseline_from_json(kMemzDoc, baseline));
  // atoms doubled — but by 2 KiB, far under the 1 MiB per-domain floor.
  const std::string jitter =
      "{\"domains\": {"
      "\"script-heap\": {\"current\": 0, \"high_water\": 1048576}, "
      "\"atoms\": {\"current\": 0, \"high_water\": 4096}}, "
      "\"rss_bytes\": 1000, \"rss_peak_bytes\": 5000000}";
  const BaselineReport report = check_baseline(baseline, jitter, 0.5);
  EXPECT_FALSE(report.regressed) << report.text;
}

// ---------------------------------------------------------------------------
// Session teardown gauge

TEST(SessionTeardown, PublishesHeapBytesGauge) {
  catalog::Catalog catalog;
  net::SyntheticWeb::Config config;
  config.site_count = 4;
  const net::SyntheticWeb web(catalog, config);
  { browser::BrowserSession session(web, {}, 1234); }
  // The session's interpreter heap held the injected environment — hundreds
  // of objects — so the teardown gauge must report real bytes.
  EXPECT_GT(Registry::global().gauge("script.heap_bytes").value(), 0);
}

}  // namespace
}  // namespace fu::obs::mem
