// Tests for the survey daemon: submission/validation, deduplicated
// concurrent POSTs (one crawl, N waiters), warm-shard re-analysis
// bit-identity against a fresh in-process crawl, the auth rejection matrix,
// and clean shutdown with jobs in flight (run under TSan in CI).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/metrics.h"
#include "analysis/tables_json.h"
#include "catalog/catalog.h"
#include "crawler/survey.h"
#include "net/web.h"
#include "obs/json.h"
#include "obs/server.h"
#include "service/daemon.h"
#include "service/request.h"

namespace fu::service {
namespace {

namespace fs = std::filesystem;

// Fresh scratch cache directory per test.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fu_svc_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DaemonOptions options() const {
    DaemonOptions opts;
    opts.cache_dir = dir_.string();
    opts.threads = 4;
    return opts;
  }

  fs::path dir_;
};

std::string http(const char* method, int port, const std::string& path,
                 const std::string& body, int& status,
                 const std::string& bearer = {}) {
  std::string response;
  std::string error;
  const bool ok =
      std::string(method) == "GET"
          ? obs::http_get("127.0.0.1", port, path, status, response, &error,
                          5.0, bearer)
          : obs::http_post("127.0.0.1", port, path, body, status, response,
                           &error, 5.0, bearer);
  EXPECT_TRUE(ok) << method << " " << path << ": " << error;
  return response;
}

obs::JsonValue parsed(const std::string& body) {
  obs::JsonValue value;
  std::string error;
  EXPECT_TRUE(obs::json_parse(body, value, &error)) << error << "\n" << body;
  return value;
}

// Poll one job until it leaves queued/running (or the deadline passes).
std::string wait_state(int port, std::uint64_t id,
                       const std::string& bearer = {}) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(240);
  for (;;) {
    int status = 0;
    const obs::JsonValue job = parsed(
        http("GET", port, "/surveys/" + std::to_string(id), "", status,
             bearer));
    const std::string state = job.string_or("state", "?");
    if (state != "queued" && state != "running") return state;
    if (std::chrono::steady_clock::now() > deadline) return "timeout";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

// The daemon-side request mirrored locally: what run_survey + tables_json
// produce in-process for the same parameters.
std::string local_tables(std::uint32_t sites, int passes,
                         const analysis::TableOptions& cut) {
  const catalog::Catalog cat(0x10f3a7ULL);
  net::SyntheticWeb::Config config;
  config.site_count = static_cast<int>(sites);
  config.seed = 0x10f3a7ULL;
  const net::SyntheticWeb web(cat, config);
  crawler::SurveyOptions options;
  options.passes = passes;
  options.seed = 0x10f3a7ULL;
  const crawler::SurveyResults results = crawler::run_survey(web, options);
  const analysis::Analysis analysis(results);
  return analysis::tables_json(analysis, cut);
}

// ------------------------------------------------------ request parsing --

TEST(SurveyRequestParse, DefaultsAndOverrides) {
  SurveyRequest request;
  std::string error;
  ASSERT_TRUE(parse_survey_request("{\"sites\": 40}", 100, request, error))
      << error;
  EXPECT_EQ(request.sites, 40u);
  EXPECT_EQ(request.seed, 0x10f3a7ULL);
  EXPECT_EQ(request.passes, 5);
  EXPECT_TRUE(request.ad_only);
  EXPECT_TRUE(request.tracking_only);
  EXPECT_DOUBLE_EQ(request.tables.table2_min_site_pct, 1.0);

  ASSERT_TRUE(parse_survey_request(
      "{\"sites\": 7, \"seed\": 42, \"passes\": 3, \"ad_only\": false, "
      "\"tracking_only\": false, \"table2_min_site_pct\": 0.5, "
      "\"table2_min_cves\": 2}",
      100, request, error))
      << error;
  EXPECT_EQ(request.sites, 7u);
  EXPECT_EQ(request.seed, 42u);
  EXPECT_EQ(request.passes, 3);
  EXPECT_FALSE(request.ad_only);
  EXPECT_FALSE(request.tracking_only);
  EXPECT_DOUBLE_EQ(request.tables.table2_min_site_pct, 0.5);
  EXPECT_EQ(request.tables.table2_min_cves, 2);
}

TEST(SurveyRequestParse, RejectsEveryDefect) {
  const char* bad[] = {
      "",                                   // empty
      "not json",                           // malformed
      "[1, 2]",                             // not an object
      "{}",                                 // missing sites
      "{\"sites\": 0}",                     // below range
      "{\"sites\": 101}",                   // above max_sites
      "{\"sites\": 1.5}",                   // non-integral
      "{\"sites\": \"12\"}",                // wrong type
      "{\"sites\": 12, \"passes\": 0}",     // passes below range
      "{\"sites\": 12, \"seed\": -1}",      // negative seed
      "{\"sites\": 12, \"ad_only\": 1}",    // bool field as number
      "{\"sites\": 12, \"sties\": 5}",      // typo'd key must fail loudly
      "{\"sites\": 12, \"table2_min_site_pct\": 150}",  // pct out of range
  };
  for (const char* body : bad) {
    SurveyRequest request;
    std::string error;
    EXPECT_FALSE(parse_survey_request(body, 100, request, error))
        << "accepted: " << body;
    EXPECT_FALSE(error.empty());
  }
}

// ------------------------------------------------- submission & tables --

TEST_F(ServiceTest, WarmReanalysisIsBitIdenticalToFreshCrawl) {
  DaemonOptions opts = options();
  std::uint64_t crawled_after_restart = 0;
  std::string daemon_tables;
  std::string daemon_tables_wide;
  {
    Daemon daemon(opts);
    ASSERT_TRUE(daemon.ok()) << daemon.error();
    int status = 0;
    const obs::JsonValue submitted = parsed(
        http("POST", daemon.port(), "/surveys",
             "{\"sites\": 12, \"passes\": 2}", status));
    EXPECT_EQ(status, 202);
    const auto id =
        static_cast<std::uint64_t>(submitted.number_or("id", 0));
    ASSERT_EQ(wait_state(daemon.port(), id), "done");
    daemon_tables = http("GET", daemon.port(),
                         "/surveys/" + std::to_string(id) + "/tables", "",
                         status);
    EXPECT_EQ(status, 200);
    EXPECT_EQ(daemon.surveys_crawled(), 1u);

    // Analysis-only variant: same crawl identity, different Table 2 cut —
    // served from the warm shard cache without touching a worker.
    const obs::JsonValue wide = parsed(http(
        "POST", daemon.port(), "/surveys",
        "{\"sites\": 12, \"passes\": 2, \"table2_min_site_pct\": 0.0}",
        status));
    EXPECT_EQ(status, 202);
    const auto wide_id = static_cast<std::uint64_t>(wide.number_or("id", 0));
    EXPECT_NE(wide_id, id);
    ASSERT_EQ(wait_state(daemon.port(), wide_id), "done");
    const obs::JsonValue wide_job = parsed(
        http("GET", daemon.port(), "/surveys/" + std::to_string(wide_id),
             "", status));
    EXPECT_EQ(wide_job.number_or("sites_recrawled", -1), 0);
    if (const obs::JsonValue* from_cache = wide_job.find("from_cache")) {
      EXPECT_TRUE(from_cache->boolean);
    }
    daemon_tables_wide =
        http("GET", daemon.port(),
             "/surveys/" + std::to_string(wide_id) + "/tables", "", status);
    EXPECT_EQ(daemon.surveys_crawled(), 1u);  // still just the one crawl
    EXPECT_EQ(daemon.surveys_from_cache(), 1u);

    // Per-survey observability: progress shows the finished crawl, metrics
    // is a valid registry-delta document.
    const obs::JsonValue progress = parsed(
        http("GET", daemon.port(),
             "/surveys/" + std::to_string(id) + "/progress.json", "",
             status));
    EXPECT_EQ(progress.number_or("done", -1), 12);
    EXPECT_EQ(progress.number_or("total", -1), 12);
    const obs::JsonValue metrics = parsed(
        http("GET", daemon.port(),
             "/surveys/" + std::to_string(id) + "/metrics.json", "",
             status));
    ASSERT_NE(metrics.find("counters"), nullptr);
    bool crawl_counter_moved = false;
    for (const auto& [name, value] : metrics.find("counters")->object) {
      if (name == "sched.jobs_executed") {
        crawl_counter_moved = value.number >= 12;
      }
    }
    EXPECT_TRUE(crawl_counter_moved);
  }

  // A restarted daemon re-derives from the shard cache left on disk: the
  // same submission completes with zero sites crawled.
  {
    Daemon daemon(opts);
    ASSERT_TRUE(daemon.ok()) << daemon.error();
    int status = 0;
    const obs::JsonValue submitted = parsed(
        http("POST", daemon.port(), "/surveys",
             "{\"sites\": 12, \"passes\": 2}", status));
    const auto id =
        static_cast<std::uint64_t>(submitted.number_or("id", 0));
    ASSERT_EQ(wait_state(daemon.port(), id), "done");
    const std::string restarted = http(
        "GET", daemon.port(), "/surveys/" + std::to_string(id) + "/tables",
        "", status);
    EXPECT_EQ(restarted, daemon_tables);
    crawled_after_restart = daemon.surveys_crawled();
    EXPECT_EQ(daemon.surveys_from_cache(), 1u);
  }
  EXPECT_EQ(crawled_after_restart, 0u);

  // The acceptance bar: both documents bit-identical to an in-process
  // crawl + analysis with the same parameters.
  EXPECT_EQ(daemon_tables, local_tables(12, 2, {}));
  analysis::TableOptions wide_cut;
  wide_cut.table2_min_site_pct = 0.0;
  EXPECT_EQ(daemon_tables_wide, local_tables(12, 2, wide_cut));
}

TEST_F(ServiceTest, ConcurrentDuplicatePostsShareOneCrawl) {
  Daemon daemon(options());
  ASSERT_TRUE(daemon.ok()) << daemon.error();

  constexpr int kClients = 8;
  std::vector<std::uint64_t> ids(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&daemon, &ids, c] {
      int status = 0;
      std::string response;
      std::string error;
      ASSERT_TRUE(obs::http_post("127.0.0.1", daemon.port(), "/surveys",
                                 "{\"sites\": 16, \"passes\": 2}", status,
                                 response, &error))
          << error;
      EXPECT_TRUE(status == 202 || status == 200) << response;
      obs::JsonValue body;
      ASSERT_TRUE(obs::json_parse(response, body));
      ids[c] = static_cast<std::uint64_t>(body.number_or("id", 0));
    });
  }
  for (std::thread& client : clients) client.join();

  // Every client was attached to the same job...
  for (const std::uint64_t id : ids) EXPECT_EQ(id, ids.front());
  ASSERT_EQ(wait_state(daemon.port(), ids.front()), "done");
  // ...which crawled exactly once and is the only job in the table.
  EXPECT_EQ(daemon.surveys_crawled(), 1u);
  int status = 0;
  const obs::JsonValue list =
      parsed(http("GET", daemon.port(), "/surveys", "", status));
  ASSERT_NE(list.find("jobs"), nullptr);
  EXPECT_EQ(list.find("jobs")->array.size(), 1u);
}

// -------------------------------------------------------------- rejects --

TEST_F(ServiceTest, MalformedAndOversizedSubmissionsAreRejected) {
  DaemonOptions opts = options();
  opts.max_sites = 100;
  Daemon daemon(opts);
  ASSERT_TRUE(daemon.ok()) << daemon.error();

  int status = 0;
  const char* bad[] = {"{not json", "{\"sites\": 0}", "{\"sites\": 101}",
                       "{}", "{\"sites\": 12, \"bogus\": true}"};
  for (const char* body : bad) {
    const obs::JsonValue response =
        parsed(http("POST", daemon.port(), "/surveys", body, status));
    EXPECT_EQ(status, 400) << body;
    EXPECT_FALSE(response.string_or("error", "").empty());
  }

  // Oversized body: refused by the server's request cap with 413, long
  // before the JSON parser sees it.
  http("POST", daemon.port(), "/surveys",
       "{\"pad\": \"" + std::string(70 * 1024, 'x') + "\"}", status);
  EXPECT_EQ(status, 413);

  // Unknown ids and non-numeric ids are 404, not crashes.
  http("GET", daemon.port(), "/surveys/999", "", status);
  EXPECT_EQ(status, 404);
  http("GET", daemon.port(), "/surveys/abc/tables", "", status);
  EXPECT_EQ(status, 404);

  // Nothing slipped into the job table.
  const obs::JsonValue list =
      parsed(http("GET", daemon.port(), "/surveys", "", status));
  EXPECT_EQ(list.find("jobs")->array.size(), 0u);
  EXPECT_EQ(daemon.surveys_crawled(), 0u);
}

TEST_F(ServiceTest, AuthRejectionMatrix) {
  DaemonOptions opts = options();
  opts.auth_token = "sekrit";
  Daemon daemon(opts);
  ASSERT_TRUE(daemon.ok()) << daemon.error();

  // Every endpoint — the daemon's own and the PR 5 read-only built-ins —
  // refuses a missing or wrong bearer before routing.
  const char* reads[] = {"/surveys",     "/surveys/1",    "/metrics.json",
                         "/metrics",     "/progress.json", "/healthz",
                         "/deltas.json"};
  int status = 0;
  for (const char* path : reads) {
    http("GET", daemon.port(), path, "", status);
    EXPECT_EQ(status, 401) << path;
    http("GET", daemon.port(), path, "", status, "wrong-token");
    EXPECT_EQ(status, 401) << path;
  }
  http("POST", daemon.port(), "/surveys", "{\"sites\": 4, \"passes\": 1}",
       status);
  EXPECT_EQ(status, 401);
  EXPECT_EQ(daemon.surveys_crawled() + daemon.surveys_from_cache(), 0u);

  // The right token reaches the handlers.
  http("GET", daemon.port(), "/surveys", "", status, "sekrit");
  EXPECT_EQ(status, 200);
  const obs::JsonValue submitted =
      parsed(http("POST", daemon.port(), "/surveys",
                  "{\"sites\": 4, \"passes\": 1}", status, "sekrit"));
  EXPECT_EQ(status, 202);
  EXPECT_EQ(wait_state(daemon.port(),
                       static_cast<std::uint64_t>(
                           submitted.number_or("id", 0)),
                       "sekrit"),
            "done");
}

TEST_F(ServiceTest, NonLoopbackBindRefusesToStartWithoutToken) {
  DaemonOptions opts = options();
  opts.bind_address = "0.0.0.0";
  Daemon exposed(opts);
  EXPECT_FALSE(exposed.ok());
  EXPECT_NE(exposed.error().find("token"), std::string::npos)
      << exposed.error();

  opts.auth_token = "sekrit";
  Daemon guarded(opts);
  EXPECT_TRUE(guarded.ok()) << guarded.error();
}

// ------------------------------------------------------------- shutdown --

TEST_F(ServiceTest, CleanShutdownWithJobsInFlightThenResume) {
  DaemonOptions opts = options();
  opts.checkpoint_every = 1;  // shard every site so the resume test bites
  const std::string survey = "{\"sites\": 48, \"passes\": 3}";
  {
    Daemon daemon(opts);
    ASSERT_TRUE(daemon.ok()) << daemon.error();
    int status = 0;
    const obs::JsonValue submitted =
        parsed(http("POST", daemon.port(), "/surveys", survey, status));
    const auto id =
        static_cast<std::uint64_t>(submitted.number_or("id", 0));
    // A second, different survey sits queued behind the first.
    http("POST", daemon.port(), "/surveys", "{\"sites\": 8, \"seed\": 9}",
         status);
    EXPECT_EQ(status, 202);

    // Let the crawl make some progress before pulling the plug, so shards
    // exist and the shutdown genuinely interrupts in-flight work.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(240);
    for (;;) {
      const obs::JsonValue progress = parsed(
          http("GET", daemon.port(),
               "/surveys/" + std::to_string(id) + "/progress.json", "",
               status));
      const double done = progress.number_or("done", 0);
      if (done > 0 || std::chrono::steady_clock::now() > deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // ~Daemon: drain the server, cancel the crawl, join the executor. The
    // whole point is that this returns instead of hanging.
  }

  // The interrupted crawl left valid shards; a fresh daemon resumes from
  // them and completes the same submission without starting over.
  Daemon daemon(opts);
  ASSERT_TRUE(daemon.ok()) << daemon.error();
  int status = 0;
  const obs::JsonValue submitted =
      parsed(http("POST", daemon.port(), "/surveys", survey, status));
  const auto id = static_cast<std::uint64_t>(submitted.number_or("id", 0));
  ASSERT_EQ(wait_state(daemon.port(), id), "done");
  const obs::JsonValue job = parsed(
      http("GET", daemon.port(), "/surveys/" + std::to_string(id), "",
           status));
  const double recrawled = job.number_or("sites_recrawled", -1);
  EXPECT_GE(recrawled, 0);
  EXPECT_LE(recrawled, 48);
  // And the result is the same document a never-interrupted crawl yields.
  const std::string tables = http(
      "GET", daemon.port(), "/surveys/" + std::to_string(id) + "/tables",
      "", status);
  EXPECT_EQ(tables, local_tables(48, 3, {}));
}

}  // namespace
}  // namespace fu::service
