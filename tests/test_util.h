// Shared fixtures: the catalog and small synthetic webs/surveys are
// expensive to build, so tests share lazily-constructed singletons. All are
// deterministic, so sharing cannot introduce order dependence.
#pragma once

#include "core/featureusage.h"

namespace fu::test {

inline const catalog::Catalog& shared_catalog() {
  static const catalog::Catalog kCatalog;
  return kCatalog;
}

// A 120-site web: big enough for statistical sanity checks, small enough to
// crawl in tests.
inline const net::SyntheticWeb& small_web() {
  static const net::SyntheticWeb kWeb = [] {
    net::SyntheticWeb::Config config;
    config.site_count = 120;
    return net::SyntheticWeb(shared_catalog(), config);
  }();
  return kWeb;
}

// A tiny web where half the sites are dead and many are broken — for the
// failure-handling tests, which need both kinds present deterministically.
inline const net::SyntheticWeb& failing_web() {
  static const net::SyntheticWeb kWeb = [] {
    net::SyntheticWeb::Config config;
    config.site_count = 20;
    config.dead_fraction = 0.5;
    config.broken_fraction = 0.5;  // applied after the dead roll
    return net::SyntheticWeb(shared_catalog(), config);
  }();
  return kWeb;
}

// A survey over the small web (all four configurations, 3 passes).
inline const crawler::SurveyResults& small_survey() {
  static const crawler::SurveyResults kResults = [] {
    crawler::SurveyOptions options;
    options.passes = 3;
    options.threads = 1;
    return crawler::run_survey(small_web(), options);
  }();
  return kResults;
}

inline const analysis::Analysis& small_analysis() {
  static const analysis::Analysis kAnalysis(small_survey());
  return kAnalysis;
}

}  // namespace fu::test
