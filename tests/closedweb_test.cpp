// Tests for the closed-web extension (§7.3): login-gated members areas,
// credentialed fetching and authenticated crawls.
#include <set>

#include <gtest/gtest.h>

#include "crawler/crawl.h"
#include "script/parser.h"
#include "test_util.h"

namespace fu::net {
namespace {

const SyntheticWeb& web() { return fu::test::small_web(); }

const SitePlan* members_site() {
  for (const SitePlan& site : web().sites()) {
    if (site.status == SiteStatus::kOk && site.has_members_area) return &site;
  }
  return nullptr;
}

TEST(ClosedWeb, AFractionOfSitesHaveMembersAreas) {
  int with = 0, ok = 0;
  for (const SitePlan& site : web().sites()) {
    if (site.status != SiteStatus::kOk) continue;
    ++ok;
    with += site.has_members_area ? 1 : 0;
  }
  // config default: 35%
  EXPECT_GT(with, ok / 6);
  EXPECT_LT(with, ok * 2 / 3);
}

TEST(ClosedWeb, AuthenticatedPlacementsAreWellFormed) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  int authenticated = 0;
  for (const SitePlan& site : web().sites()) {
    for (const StandardPlacement& p : site.placements) {
      if (!p.authenticated) continue;
      ++authenticated;
      EXPECT_TRUE(site.has_members_area) << site.domain;
      EXPECT_FALSE(p.blockable);
      EXPECT_FALSE(p.features.empty());
      EXPECT_LT(p.standard, cat.standard_count());
    }
  }
  EXPECT_GT(authenticated, 0);
}

TEST(ClosedWeb, AnonymousFetchHitsTheLoginWall) {
  const SitePlan* site = members_site();
  ASSERT_NE(site, nullptr);
  const Url account =
      *Url::parse("http://" + site->domain + "/account/m0.html");
  const auto wall = web().fetch(account, /*authenticated=*/false);
  ASSERT_TRUE(wall);
  EXPECT_NE(wall->body.find("Members only"), std::string::npos);
  EXPECT_EQ(wall->body.find("members.js"), std::string::npos);
  // the members script itself is also gated
  const Url script = *Url::parse("http://" + site->domain + "/js/members.js");
  EXPECT_FALSE(web().fetch(script, false));
}

TEST(ClosedWeb, AuthenticatedFetchServesContent) {
  const SitePlan* site = members_site();
  ASSERT_NE(site, nullptr);
  const Url account =
      *Url::parse("http://" + site->domain + "/account/m0.html");
  const auto page = web().fetch(account, /*authenticated=*/true);
  ASSERT_TRUE(page);
  EXPECT_NE(page->body.find("/js/members.js"), std::string::npos);
  EXPECT_EQ(page->body.find("Members only"), std::string::npos);

  const Url script = *Url::parse("http://" + site->domain + "/js/members.js");
  const auto js = web().fetch(script, true);
  ASSERT_TRUE(js);
  EXPECT_EQ(js->kind, ResourceKind::kScript);
  EXPECT_NO_THROW(script::parse_program(js->body));
}

TEST(ClosedWeb, SitesWithoutMembersAreasHaveNoAccountPages) {
  for (const SitePlan& site : web().sites()) {
    if (site.status != SiteStatus::kOk || site.has_members_area) continue;
    const Url account =
        *Url::parse("http://" + site.domain + "/account/m0.html");
    EXPECT_FALSE(web().fetch(account, true));
    return;
  }
  FAIL() << "every site has a members area?";
}

TEST(ClosedWeb, MemberPageIndexIsBounded) {
  const SitePlan* site = members_site();
  ASSERT_NE(site, nullptr);
  const Url beyond = *Url::parse("http://" + site->domain + "/account/m" +
                                 std::to_string(site->member_pages) + ".html");
  EXPECT_FALSE(web().fetch(beyond, true));
}

TEST(ClosedWeb, AuthenticatedCrawlSeesMore) {
  const catalog::Catalog& cat = fu::test::shared_catalog();
  const SitePlan* site = members_site();
  ASSERT_NE(site, nullptr);
  // pick a members site that actually has authenticated placements
  const SitePlan* target = nullptr;
  for (const SitePlan& candidate : web().sites()) {
    if (candidate.status != SiteStatus::kOk) continue;
    for (const StandardPlacement& p : candidate.placements) {
      if (p.authenticated) {
        target = &candidate;
        break;
      }
    }
    if (target != nullptr) break;
  }
  ASSERT_NE(target, nullptr);

  crawler::CrawlConfig open_config;
  crawler::CrawlConfig closed_config;
  closed_config.browser.authenticated = true;

  // several passes so the members section is reliably discovered
  support::DynamicBitset open_bits(cat.features().size());
  support::DynamicBitset closed_bits(cat.features().size());
  for (int pass = 0; pass < 4; ++pass) {
    open_bits |= crawler::crawl_site(web(), open_config, *target,
                                     100 + pass).features;
    closed_bits |=
        crawler::crawl_site(web(), closed_config, *target, 100 + pass)
            .features;
  }
  EXPECT_GE(closed_bits.count(), open_bits.count());

  // no authenticated-only feature may ever show up in the open crawl
  std::set<catalog::FeatureId> authenticated_only;
  for (const StandardPlacement& p : target->placements) {
    if (!p.authenticated) continue;
    for (const catalog::FeatureId fid : p.features) {
      authenticated_only.insert(fid);
    }
  }
  // (a feature can also appear in a non-authenticated placement; only check
  // the ones that are exclusively behind the login)
  for (const StandardPlacement& p : target->placements) {
    if (p.authenticated) continue;
    for (const catalog::FeatureId fid : p.features) {
      authenticated_only.erase(fid);
    }
  }
  for (const catalog::FeatureId fid : authenticated_only) {
    EXPECT_FALSE(open_bits.test(fid))
        << "open crawl saw login-gated feature "
        << cat.feature(fid).full_name;
  }
}

TEST(ClosedWeb, DefaultSurveyNeverSeesAuthenticatedOnlyStandards) {
  // The whole-point invariant: the paper's open-web methodology must be
  // blind to the closed web. EME and Broadcast Channel features exist only
  // in members areas, and the small survey must never record them.
  const catalog::Catalog& cat = fu::test::shared_catalog();
  const auto eme = cat.standard_by_abbreviation("EME");
  const auto hb = cat.standard_by_abbreviation("H-B");
  const auto& survey = fu::test::small_survey();
  for (const auto& outcome : survey.sites) {
    for (const auto& bits : outcome.features) {
      for (std::size_t f = 0; f < bits.size(); ++f) {
        if (!bits.test(f)) continue;
        const auto standard =
            cat.feature(static_cast<catalog::FeatureId>(f)).standard;
        EXPECT_NE(standard, eme);
        EXPECT_NE(standard, hb);
      }
    }
  }
}

}  // namespace
}  // namespace fu::net
