// Report-exporter tests: files land on disk, CSVs parse and carry the right
// columns/rows.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "analysis/report.h"
#include "support/csv.h"
#include "test_util.h"

namespace fu::analysis {
namespace {

TEST(Report, WritesAllArtifacts) {
  const std::string dir = ::testing::TempDir() + "/fu_report";
  const int files = write_report(dir, fu::test::small_analysis());
  EXPECT_GE(files, 20);
  for (const char* name :
       {"table1.txt", "table2.txt", "table3.txt", "fig1.txt", "fig3.txt",
        "fig4.txt", "fig5.txt", "fig6.txt", "fig7.txt", "fig8.txt",
        "fig9.txt", "headline.txt", "failures.csv", "features.csv",
        "standards.csv", "cves.csv", "fig4.csv", "fig8.csv"}) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / name))
        << name;
    EXPECT_GT(std::filesystem::file_size(std::filesystem::path(dir) / name),
              0u)
        << name;
  }
}

TEST(Report, FailuresCsvListsEachFailedSiteWithReason) {
  // A clean survey yields a header-only file.
  const auto clean_rows =
      support::csv_parse(failures_csv(fu::test::small_survey()));
  ASSERT_EQ(clean_rows.size(), 1u);
  EXPECT_EQ(clean_rows[0],
            (std::vector<std::string>{"domain", "attempts", "error"}));

  // Inject two failing sites and find exactly them, with their reasons.
  crawler::SurveyOptions options;
  options.passes = 2;
  options.include_ad_only = false;
  options.include_tracking_only = false;
  options.fault_injection = [](std::size_t site, int) {
    if (site == 2 || site == 5) throw std::runtime_error("injected fault");
  };
  const crawler::SurveyResults results =
      crawler::run_survey(fu::test::small_web(), options);
  const auto rows = support::csv_parse(failures_csv(results));
  ASSERT_EQ(rows.size(), 3u);
  const auto& web_sites = fu::test::small_web().sites();
  EXPECT_EQ(rows[1][0], web_sites[2].domain);
  EXPECT_EQ(rows[2][0], web_sites[5].domain);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i][1], "1");  // one attempt, no retries configured
    EXPECT_EQ(rows[i][2], "injected fault");
  }
}

TEST(Report, FeaturesCsvHasOneRowPerFeature) {
  const std::string csv = features_csv(fu::test::small_analysis());
  const auto rows = support::csv_parse(csv);
  ASSERT_EQ(rows.size(), 1392u + 1);  // header + catalog
  EXPECT_EQ(rows[0][0], "feature");
  EXPECT_EQ(rows[0].size(), 8u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].size(), 8u) << i;
  }
}

TEST(Report, StandardsCsvHasOneRowPerStandard) {
  const std::string csv = standards_csv(fu::test::small_analysis());
  const auto rows = support::csv_parse(csv);
  ASSERT_EQ(rows.size(), 75u + 1);
  EXPECT_EQ(rows[0].back(), "cves");
}

TEST(Report, CvesCsvMatchesDatabase) {
  const auto& cat = fu::test::shared_catalog();
  const auto rows = support::csv_parse(cves_csv(cat));
  EXPECT_EQ(rows.size(), cat.cves().size() + 1);
}

TEST(Report, FigureCsvsParse) {
  const Analysis& an = fu::test::small_analysis();
  for (const std::string& csv :
       {fig3_csv(an), fig4_csv(an), fig5_csv(an), fig6_csv(an), fig7_csv(an),
        fig8_csv(an)}) {
    const auto rows = support::csv_parse(csv);
    EXPECT_GT(rows.size(), 2u);
    for (const auto& row : rows) {
      EXPECT_EQ(row.size(), rows[0].size());
    }
  }
}

TEST(Report, Fig5FractionsAreUnitInterval) {
  const auto rows = support::csv_parse(fig5_csv(fu::test::small_analysis()));
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const double sites = std::stod(rows[i][1]);
    const double visits = std::stod(rows[i][2]);
    EXPECT_GE(sites, 0.0);
    EXPECT_LE(sites, 1.0);
    EXPECT_GE(visits, 0.0);
    EXPECT_LE(visits, 1.0);
  }
}

}  // namespace
}  // namespace fu::analysis
