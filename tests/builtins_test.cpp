// Extended-builtin tests: Array methods, String methods, JSON, Object.
#include <gtest/gtest.h>

#include "script/interp.h"
#include "script/parser.h"

namespace fu::script {
namespace {

Value eval(const std::string& expr) {
  static std::vector<std::unique_ptr<Program>> retained;
  Interpreter interp;
  retained.push_back(
      std::make_unique<Program>(parse_program("var result = " + expr + ";")));
  interp.execute(*retained.back());
  return *interp.globals().lookup("result");
}

Value run(Interpreter& interp, const std::string& source) {
  static std::vector<std::unique_ptr<Program>> retained;
  retained.push_back(std::make_unique<Program>(parse_program(source)));
  interp.execute(*retained.back());
  const Value* v = interp.globals().lookup("result");
  return v == nullptr ? Value() : *v;
}

// ---------------------------------------------------------------- array --

TEST(ArrayBuiltins, PushPopAndLength) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run(interp, R"(
    var a = [1, 2];
    a.push(3);
    a.push(4, 5);
    var result = a.length;
  )").as_number(), 5);
  EXPECT_DOUBLE_EQ(run(interp, "var result = a.pop();").as_number(), 5);
  EXPECT_DOUBLE_EQ(run(interp, "var result = a.length;").as_number(), 4);
}

TEST(ArrayBuiltins, PopOnEmptyIsUndefined) {
  EXPECT_TRUE(eval("[].pop()").is_undefined());
}

TEST(ArrayBuiltins, Join) {
  EXPECT_EQ(eval("[1, 2, 3].join(\"-\")").as_string(), "1-2-3");
  EXPECT_EQ(eval("[1, 2].join()").as_string(), "1,2");
  EXPECT_EQ(eval("[].join(\",\")").as_string(), "");
  EXPECT_EQ(eval("[null, 1, undefined].join(\",\")").as_string(), ",1,");
}

TEST(ArrayBuiltins, IndexOf) {
  EXPECT_DOUBLE_EQ(eval("[10, 20, 30].indexOf(20)").as_number(), 1);
  EXPECT_DOUBLE_EQ(eval("[10, 20].indexOf(99)").as_number(), -1);
  EXPECT_DOUBLE_EQ(eval("[\"a\", \"b\"].indexOf(\"b\")").as_number(), 1);
}

TEST(ArrayBuiltins, Slice) {
  EXPECT_EQ(eval("[1,2,3,4].slice(1, 3).join(\",\")").as_string(), "2,3");
  EXPECT_EQ(eval("[1,2,3,4].slice(2).join(\",\")").as_string(), "3,4");
  EXPECT_EQ(eval("[1,2,3,4].slice(-2).join(\",\")").as_string(), "3,4");
  EXPECT_DOUBLE_EQ(eval("[1,2,3].slice(5).length").as_number(), 0);
}

TEST(ArrayBuiltins, IsArray) {
  EXPECT_TRUE(eval("Array.isArray([1])").as_bool());
  EXPECT_FALSE(eval("Array.isArray({})").as_bool());
  EXPECT_FALSE(eval("Array.isArray(\"x\")").as_bool());
}

// --------------------------------------------------------------- string --

TEST(StringBuiltins, IndexOf) {
  EXPECT_DOUBLE_EQ(eval("\"hello world\".indexOf(\"world\")").as_number(), 6);
  EXPECT_DOUBLE_EQ(eval("\"abc\".indexOf(\"z\")").as_number(), -1);
}

TEST(StringBuiltins, SliceAndSubstring) {
  EXPECT_EQ(eval("\"abcdef\".slice(1, 4)").as_string(), "bcd");
  EXPECT_EQ(eval("\"abcdef\".slice(-2)").as_string(), "ef");
  EXPECT_EQ(eval("\"abcdef\".substring(0, 2)").as_string(), "ab");
  EXPECT_EQ(eval("\"abc\".slice(2, 1)").as_string(), "");
}

TEST(StringBuiltins, Split) {
  EXPECT_EQ(eval("\"a,b,c\".split(\",\").length").to_number(), 3);
  EXPECT_EQ(eval("\"a,b,c\".split(\",\")[1]").as_string(), "b");
  EXPECT_EQ(eval("\"abc\".split(\"\").length").to_number(), 3);
  EXPECT_EQ(eval("\"a//b\".split(\"/\").length").to_number(), 3);
}

TEST(StringBuiltins, ReplaceFirstOccurrence) {
  EXPECT_EQ(eval("\"a-b-c\".replace(\"-\", \"+\")").as_string(), "a+b-c");
  EXPECT_EQ(eval("\"abc\".replace(\"z\", \"y\")").as_string(), "abc");
}

TEST(StringBuiltins, CaseAndCharAt) {
  EXPECT_EQ(eval("\"MiXeD\".toLowerCase()").as_string(), "mixed");
  EXPECT_EQ(eval("\"MiXeD\".toUpperCase()").as_string(), "MIXED");
  EXPECT_EQ(eval("\"abc\".charAt(1)").as_string(), "b");
  EXPECT_EQ(eval("\"abc\".charAt(9)").as_string(), "");
}

TEST(StringBuiltins, ChainedCalls) {
  EXPECT_EQ(eval("\"A-B-C\".toLowerCase().split(\"-\").join(\"\")")
                .as_string(),
            "abc");
}

// ----------------------------------------------------------------- JSON --

TEST(JsonBuiltins, StringifyPrimitives) {
  EXPECT_EQ(eval("JSON.stringify(1)").as_string(), "1");
  EXPECT_EQ(eval("JSON.stringify(\"a\\\"b\")").as_string(), "\"a\\\"b\"");
  EXPECT_EQ(eval("JSON.stringify(true)").as_string(), "true");
  EXPECT_EQ(eval("JSON.stringify(null)").as_string(), "null");
  EXPECT_EQ(eval("JSON.stringify(undefined)").as_string(), "null");
}

TEST(JsonBuiltins, StringifyComposites) {
  EXPECT_EQ(eval("JSON.stringify([1, \"x\", false])").as_string(),
            "[1,\"x\",false]");
  EXPECT_EQ(eval("JSON.stringify({ a: 1, b: [2, 3] })").as_string(),
            "{\"a\":1,\"b\":[2,3]}");
}

TEST(JsonBuiltins, ParseRoundTrip) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run(interp, R"(
    var obj = JSON.parse("{\"x\": 5, \"list\": [1, 2, 3]}");
    var result = obj.x + obj.list.length + obj.list[2];
  )").as_number(), 5 + 3 + 3);
}

TEST(JsonBuiltins, ParseRejectsGarbage) {
  Interpreter interp;
  EXPECT_THROW(run(interp, "JSON.parse(\"{bad\");"), ScriptError);
  EXPECT_THROW(run(interp, "JSON.parse(\"[1, ]extra\");"), ScriptError);
  EXPECT_THROW(run(interp, "JSON.parse(123);"), ScriptError);
}

TEST(JsonBuiltins, StringifyParseIdentity) {
  Interpreter interp;
  EXPECT_EQ(run(interp, R"(
    var original = { name: "probe", tags: ["a", "b"], depth: 2 };
    var copy = JSON.parse(JSON.stringify(original));
    var result = copy.name + copy.tags.join("") + copy.depth;
  )").as_string(), "probeab2");
}

// --------------------------------------------------------------- object --

TEST(ObjectBuiltins, Keys) {
  EXPECT_DOUBLE_EQ(eval("Object.keys({ a: 1, b: 2 }).length").as_number(), 2);
  // insertion order, like real JavaScript (was sorted under the old
  // std::map-backed property storage)
  EXPECT_EQ(eval("Object.keys({ z: 1, a: 2 })[0]").as_string(), "z");
  EXPECT_DOUBLE_EQ(eval("Object.keys({}).length").as_number(), 0);
}

}  // namespace
}  // namespace fu::script
