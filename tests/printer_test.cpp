// AST printer tests, including the parser round-trip property: printing a
// parsed program and reparsing it reaches a fixed point, and both versions
// behave identically when executed.
#include <gtest/gtest.h>

#include "net/scriptgen.h"
#include "net/web.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/printer.h"
#include "test_util.h"

namespace fu::script {
namespace {

std::string normalize(const std::string& source) {
  return to_source(parse_program(source));
}

TEST(Printer, Expressions) {
  EXPECT_EQ(normalize("1 + 2 * 3;"), "(1 + (2 * 3));\n");
  EXPECT_EQ(normalize("var s = \"a\\\"b\";"), "var s = \"a\\\"b\";\n");
  EXPECT_EQ(normalize("x = a < b ? 1 : 2;"),
            "(x = ((a < b) ? 1 : 2));\n");
}

TEST(Printer, StatementsRender) {
  const std::string out = normalize(R"(
    function add(a, b) { return a + b; }
    var total = 0;
    for (var i = 0; i < 3; i = i + 1) { total += add(total, i); }
    while (total > 100) { total = total - 1; }
    if (total == 3) { total = 0; } else { total = 1; }
    try { ghost(); } catch (e) { total = -1; }
  )");
  EXPECT_NE(out.find("function add(a, b)"), std::string::npos);
  EXPECT_NE(out.find("for (var i = 0; "), std::string::npos);
  EXPECT_NE(out.find("while ("), std::string::npos);
  EXPECT_NE(out.find("} else {"), std::string::npos);
  EXPECT_NE(out.find("} catch (e) {"), std::string::npos);
}

TEST(Printer, RoundTripFixedPoint) {
  for (const char* source : {
           "var a = 1, b = 2; a = a + b;",
           "function f(x) { return x * 2; } f(21);",
           "var o = { k: [1, 2, { n: 3 }] }; o.k[2].n = 4;",
           "window.setTimeout(function () { go(); }, 100);",
           "for (var i = 0, j = 9; i < j; i++) { if (i == 4) { break; } }",
           "var t = typeof missing; var n = -x; var z = !y;",
           "new Foo(1, \"two\").bar().baz;",
       }) {
    const std::string once = normalize(source);
    const std::string twice = normalize(once);
    EXPECT_EQ(once, twice) << source;
  }
}

TEST(Printer, RoundTripPreservesBehaviour) {
  const char* source = R"(
    function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    var parts = [];
    for (var i = 0; i < 8; i = i + 1) { parts.push(fib(i)); }
    var result = parts.join(",");
  )";
  const std::string printed = normalize(source);

  Interpreter a, b;
  const Program original = parse_program(source);
  const Program reparsed = parse_program(printed);
  a.execute(original);
  b.execute(reparsed);
  EXPECT_EQ(a.globals().lookup("result")->as_string(),
            b.globals().lookup("result")->as_string());
  EXPECT_EQ(a.globals().lookup("result")->as_string(), "0,1,1,2,3,5,8,13");
}

// Property sweep: every generated site script round-trips through the
// printer to a fixed point.
class GeneratedScriptRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedScriptRoundTrip, FixedPoint) {
  const net::SyntheticWeb& web = fu::test::small_web();
  const net::SitePlan& site = web.sites()[static_cast<std::size_t>(GetParam())];
  if (site.status != net::SiteStatus::kOk) GTEST_SKIP();
  const auto res = web.fetch(
      *net::Url::parse("http://" + site.domain + "/js/app0.js"));
  ASSERT_TRUE(res);
  const std::string once = normalize(res->body);
  EXPECT_EQ(once, normalize(once));
}

INSTANTIATE_TEST_SUITE_P(Sites, GeneratedScriptRoundTrip,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace fu::script
