// Robustness sweeps: seeded random inputs against every parser in the
// system. The property under test is "no crash, no hang, graceful error" —
// these are the components that consume attacker-controlled bytes in the
// real systems they model.
#include <gtest/gtest.h>

#include "blocker/filter.h"
#include "dom/html.h"
#include "dom/selector.h"
#include "net/url.h"
#include "script/parser.h"
#include "support/rng.h"
#include "webidl/parser.h"

namespace fu {
namespace {

// Random byte soup, biased toward structural characters.
std::string random_text(support::Rng& rng, std::size_t max_len) {
  static const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789<>/=\"'{}()[];,.*#@!|^$&?:%+- \n\t";
  const std::size_t len = rng.below(max_len) + 1;
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(alphabet[rng.below(alphabet.size())]);
  }
  return out;
}

class FuzzSweep : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweep, HtmlParserNeverThrows) {
  support::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_text(rng, 400);
    const auto doc = dom::parse_html(input);  // must not throw
    ASSERT_NE(doc, nullptr);
    // the result is a well-formed tree with scaffold present
    ASSERT_NE(doc->head(), nullptr);
    ASSERT_NE(doc->body(), nullptr);
    // serialization of whatever came out must also not throw
    const std::string out = dom::serialize(*doc);
    (void)out;
  }
}

TEST_P(FuzzSweep, UrlParserNeverThrows) {
  support::Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    const std::string input = "http://" + random_text(rng, 120);
    const auto url = net::Url::parse(input);  // nullopt is fine
    if (url) {
      // accepted URLs round-trip through spec()
      const auto again = net::Url::parse(url->spec());
      ASSERT_TRUE(again) << url->spec();
      EXPECT_EQ(*again, *url);
      (void)net::registrable_domain(url->host());
      (void)url->path_segments();
    }
  }
}

TEST_P(FuzzSweep, UrlResolveNeverThrows) {
  support::Rng rng(2500 + static_cast<std::uint64_t>(GetParam()));
  const net::Url base = *net::Url::parse("http://example.com/a/b.html");
  for (int i = 0; i < 500; ++i) {
    (void)base.resolve(random_text(rng, 80));
  }
}

TEST_P(FuzzSweep, FilterRuleParserNeverThrows) {
  support::Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  const net::Url probe = *net::Url::parse("http://cdn.ads.com/tag.js?x=1");
  blocker::RequestContext ctx;
  ctx.page_domain = "example.com";
  ctx.third_party = true;
  ctx.type = blocker::ResourceType::kScript;
  for (int i = 0; i < 300; ++i) {
    const std::string line = random_text(rng, 60);
    const auto rule = blocker::parse_rule(line);
    if (rule) (void)rule->matches(probe, ctx);  // matching must be total
  }
}

TEST_P(FuzzSweep, FilterListParserNeverThrows) {
  support::Rng rng(3500 + static_cast<std::uint64_t>(GetParam()));
  std::string list_text;
  for (int i = 0; i < 60; ++i) {
    list_text += random_text(rng, 40);
    list_text += "\n";
  }
  const auto list = blocker::FilterList::parse(list_text, "fuzz");
  const net::Url probe = *net::Url::parse("http://x.com/y?z=1");
  blocker::RequestContext ctx;
  ctx.page_domain = "x.com";
  (void)list.should_block(probe, ctx);
  (void)list.hiding_selectors_for("x.com");
}

TEST_P(FuzzSweep, SelectorParserNeverThrows) {
  support::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const auto doc = dom::parse_html("<div class=\"a b\"><p id=\"x\">t</p></div>");
  for (int i = 0; i < 300; ++i) {
    const auto selector = dom::Selector::parse(random_text(rng, 50));
    if (selector) (void)selector->select_all(*doc);
  }
}

TEST_P(FuzzSweep, ScriptLexerAndParserFailGracefully) {
  support::Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_text(rng, 200);
    try {
      (void)script::parse_program(input);  // either parses...
    } catch (const script::SyntaxError&) {
      // ...or raises exactly SyntaxError — nothing else
    }
  }
}

TEST_P(FuzzSweep, WebIdlParserFailsGracefully) {
  support::Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_text(rng, 200);
    try {
      (void)webidl::parse(input);
    } catch (const webidl::ParseError&) {
    } catch (const webidl::LexError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0, 5));

// Adversarial hand-picked inputs that historically break hand-written
// parsers.
TEST(Adversarial, HtmlEdgeCases) {
  for (const char* input : {
           "<",
           ">",
           "<>",
           "</>",
           "<!---->",
           "<!--",
           "<script>",
           "<script><script></script>",
           "<a b=c d='e' f=\"g\" h>",
           "<div><div><div><div>",
           "</div></div>",
           "<img src=x><img src=y>",
           "<<<<><><><>",
           "<a href=\"x\" href=\"y\">dup</a>",
       }) {
    const auto doc = dom::parse_html(input);
    ASSERT_NE(doc, nullptr) << input;
  }
}

TEST(Adversarial, DeeplyNestedHtmlTerminates) {
  std::string deep;
  for (int i = 0; i < 3000; ++i) deep += "<div>";
  const auto doc = dom::parse_html(deep);
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->get_elements_by_tag("div").size(), 3000u);
}

TEST(Adversarial, ScriptParserPathologies) {
  for (const char* input : {
           "(((((((((((((((1)))))))))))))));",
           "a.b.c.d.e.f.g.h.i.j.k.l.m.n;",
           "f(g(h(i(j(k(l(1)))))));",
           "var x = {a:{b:{c:{d:{e:1}}}}};",
           "\"\\\\\\\\\\\\\";",
       }) {
    try {
      (void)script::parse_program(input);
    } catch (const script::SyntaxError&) {
    }
  }
}

TEST(Adversarial, DeepExpressionNestingDoesNotOverflow) {
  // 20k nested parens would smash the stack in a naive recursive parser if
  // each level were heavy; this documents the accepted depth instead of
  // crashing. Use a flat-ish but long expression chain.
  std::string chain = "var x = 1";
  for (int i = 0; i < 20000; ++i) chain += " + 1";
  chain += ";";
  EXPECT_NO_THROW((void)script::parse_program(chain));
}

}  // namespace
}  // namespace fu
