#include <gtest/gtest.h>

#include "script/interp.h"
#include "script/parser.h"

namespace fu::script {
namespace {

// Helper: run source, return the value of global `result`.
Value run_and_get(Interpreter& interp, const std::string& source,
                  const char* global = "result") {
  static std::vector<std::unique_ptr<Program>> retained;
  retained.push_back(std::make_unique<Program>(parse_program(source)));
  interp.execute(*retained.back());
  const Value* v = interp.globals().lookup(global);
  return v == nullptr ? Value() : *v;
}

Value eval(const std::string& expr) {
  Interpreter interp;
  return run_and_get(interp, "var result = " + expr + ";");
}

// ---------------------------------------------------------------- lexer --

TEST(ScriptLexer, TokenKinds) {
  const auto toks = tokenize("var x = 1.5; // comment\n\"s\" === x");
  EXPECT_EQ(toks[0].text, "var");
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[3].number, 1.5);
  EXPECT_EQ(toks[5].kind, TokKind::kString);
  EXPECT_EQ(toks[6].text, "===");
}

TEST(ScriptLexer, StringEscapes) {
  const auto toks = tokenize(R"('a\n\t\\\'b' "q\"q")");
  EXPECT_EQ(toks[0].text, "a\n\t\\'b");
  EXPECT_EQ(toks[1].text, "q\"q");
}

TEST(ScriptLexer, ThrowsOnBadInput) {
  EXPECT_THROW(tokenize("\"unterminated"), SyntaxError);
  EXPECT_THROW(tokenize("/* unterminated"), SyntaxError);
  EXPECT_THROW(tokenize("var x = @;"), SyntaxError);
}

// --------------------------------------------------------- expressions ---

TEST(Interp, ArithmeticAndPrecedence) {
  EXPECT_DOUBLE_EQ(eval("1 + 2 * 3").as_number(), 7);
  EXPECT_DOUBLE_EQ(eval("(1 + 2) * 3").as_number(), 9);
  EXPECT_DOUBLE_EQ(eval("10 % 4").as_number(), 2);
  EXPECT_DOUBLE_EQ(eval("-3 + 1").as_number(), -2);
  EXPECT_DOUBLE_EQ(eval("7 / 2").as_number(), 3.5);
}

TEST(Interp, StringConcatenationCoerces) {
  EXPECT_EQ(eval("\"a\" + 1").as_string(), "a1");
  EXPECT_EQ(eval("1 + \"a\"").as_string(), "1a");
  EXPECT_EQ(eval("\"x\" + true").as_string(), "xtrue");
}

TEST(Interp, ComparisonOperators) {
  EXPECT_TRUE(eval("1 < 2").as_bool());
  EXPECT_FALSE(eval("2 <= 1").as_bool());
  EXPECT_TRUE(eval("\"a\" < \"b\"").as_bool());
  EXPECT_TRUE(eval("3 >= 3").as_bool());
}

TEST(Interp, EqualityLooseVsStrict) {
  EXPECT_TRUE(eval("1 == \"1\"").as_bool());
  EXPECT_FALSE(eval("1 === \"1\"").as_bool());
  EXPECT_TRUE(eval("null == undefined").as_bool());
  EXPECT_FALSE(eval("null === undefined").as_bool());
  EXPECT_TRUE(eval("2 !== 3").as_bool());
}

TEST(Interp, LogicalOperatorsShortCircuit) {
  EXPECT_TRUE(eval("true && true").as_bool());
  EXPECT_DOUBLE_EQ(eval("false || 5").as_number(), 5);
  // short-circuit: the unbound identifier is never evaluated
  Interpreter interp;
  EXPECT_NO_THROW(run_and_get(interp, "var result = false && nope();"));
  EXPECT_FALSE(eval("false && true").as_bool());
}

TEST(Interp, ConditionalExpression) {
  EXPECT_EQ(eval("1 < 2 ? \"yes\" : \"no\"").as_string(), "yes");
  EXPECT_EQ(eval("1 > 2 ? \"yes\" : \"no\"").as_string(), "no");
}

TEST(Interp, TypeofOperator) {
  EXPECT_EQ(eval("typeof 1").as_string(), "number");
  EXPECT_EQ(eval("typeof \"s\"").as_string(), "string");
  EXPECT_EQ(eval("typeof true").as_string(), "boolean");
  EXPECT_EQ(eval("typeof undefined").as_string(), "undefined");
  EXPECT_EQ(eval("typeof notBound").as_string(), "undefined");
  EXPECT_EQ(eval("typeof {}").as_string(), "object");
  EXPECT_EQ(eval("typeof function () {}").as_string(), "function");
}

TEST(Interp, ObjectAndArrayLiterals) {
  EXPECT_DOUBLE_EQ(eval("({ a: 1, \"b\": 2 }).a").as_number(), 1);
  EXPECT_DOUBLE_EQ(eval("[10, 20, 30][1]").as_number(), 20);
  EXPECT_DOUBLE_EQ(eval("[1, 2, 3].length").as_number(), 3);
  EXPECT_DOUBLE_EQ(eval("\"hello\".length").as_number(), 5);
}

// ----------------------------------------------------------- statements --

TEST(Interp, VarDeclarationsAndAssignment) {
  Interpreter interp;
  const Value v = run_and_get(interp, "var a = 1, b = 2; var result = a + b;");
  EXPECT_DOUBLE_EQ(v.as_number(), 3);
}

TEST(Interp, CompoundAssignmentAndIncrement) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(
      run_and_get(interp, "var x = 1; x += 4; x -= 2; var result = x;")
          .as_number(),
      3);
  EXPECT_DOUBLE_EQ(
      run_and_get(interp, "var y = 0; y++; ++y; var result = y;").as_number(),
      2);
}

TEST(Interp, IfElseChain) {
  Interpreter interp;
  const Value v = run_and_get(interp, R"(
    var result = "";
    var x = 7;
    if (x > 10) { result = "big"; }
    else if (x > 5) { result = "mid"; }
    else { result = "small"; }
  )");
  EXPECT_EQ(v.as_string(), "mid");
}

TEST(Interp, WhileAndForLoops) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var sum = 0;
    for (var i = 0; i < 5; i = i + 1) { sum += i; }
    var result = sum;
  )").as_number(), 10);
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var n = 0;
    while (n < 8) { n += 3; }
    var result = n;
  )").as_number(), 9);
}

TEST(Interp, BreakAndContinue) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var sum = 0;
    for (var i = 0; i < 10; i = i + 1) {
      if (i == 2) { continue; }
      if (i == 5) { break; }
      sum += i;
    }
    var result = sum;
  )").as_number(), 0 + 1 + 3 + 4);
}

TEST(Interp, DoWhileRunsBodyAtLeastOnce) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var n = 0;
    do { n = n + 1; } while (false);
    var result = n;
  )").as_number(), 1);
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var total = 0, i = 0;
    do { total += i; i = i + 1; } while (i < 5);
    var result = total;
  )").as_number(), 10);
}

TEST(Interp, DoWhileHonoursBreakAndContinue) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var n = 0, i = 0;
    do {
      i = i + 1;
      if (i == 2) { continue; }
      if (i == 5) { break; }
      n = n + i;
    } while (i < 100);
    var result = n;
  )").as_number(), 1 + 3 + 4);
}

TEST(Interp, SwitchSelectsMatchingCase) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    function name(code) {
      switch (code) {
        case 1: return "one";
        case 2: return "two";
        default: return "many";
      }
    }
    var result = name(2) + name(1) + name(9);
  )").as_string(), "twoonemany");
}

TEST(Interp, SwitchFallsThroughWithoutBreak) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    var log = "";
    switch (2) {
      case 1: log += "a";
      case 2: log += "b";
      case 3: log += "c"; break;
      case 4: log += "d";
    }
    var result = log;
  )").as_string(), "bc");
}

TEST(Interp, SwitchUsesStrictComparison) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    var result = "";
    switch ("1") {
      case 1: result = "number"; break;
      case "1": result = "string"; break;
    }
  )").as_string(), "string");
}

TEST(Interp, SwitchWithNoMatchAndNoDefaultDoesNothing) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    var result = "untouched";
    switch (42) { case 1: result = "no"; break; }
  )").as_string(), "untouched");
}

TEST(Interp, InOperatorChecksPropertyExistence) {
  Interpreter interp;
  EXPECT_TRUE(run_and_get(interp, R"(
    var o = { present: undefined };
    var result = "present" in o;
  )").as_bool());
  EXPECT_FALSE(run_and_get(interp, "var result = \"absent\" in ({});")
                   .as_bool());
  EXPECT_THROW(run_and_get(interp, "var result = \"x\" in 5;"), ScriptError);
}

TEST(Interp, InstanceofWalksPrototypeChain) {
  Interpreter interp;
  EXPECT_TRUE(run_and_get(interp, R"(
    function Gadget() { return undefined; }
    var g = new Gadget();
    var result = g instanceof Gadget;
  )").as_bool());
  EXPECT_FALSE(run_and_get(interp, R"(
    function Widget() { return undefined; }
    var result = ({}) instanceof Widget;
  )").as_bool());
  EXPECT_THROW(run_and_get(interp, "var result = ({}) instanceof 3;"),
               ScriptError);
}

TEST(Interp, DeleteRemovesOwnProperties) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    var o = { gone: 1, kept: 2 };
    delete o.gone;
    var result = ("gone" in o ? "still" : "deleted") + o.kept;
  )").as_string(), "deleted2");
  // delete through an index expression too
  EXPECT_FALSE(run_and_get(interp, R"(
    var o2 = { k: 1 };
    delete o2["k"];
    var result = "k" in o2;
  )").as_bool());
  EXPECT_THROW(run_and_get(interp, "delete justAName;"), SyntaxError);
}

TEST(Interp, TryCatchRecoversFromRuntimeErrors) {
  Interpreter interp;
  const Value v = run_and_get(interp, R"(
    var result = "before";
    try {
      missingFunction();
      result = "not reached";
    } catch (e) {
      result = "caught";
    }
  )");
  EXPECT_EQ(v.as_string(), "caught");
}

TEST(Interp, CatchBindingReceivesMessage) {
  Interpreter interp;
  const Value v = run_and_get(interp, R"(
    var result = "";
    try { undefinedThing.call(); } catch (err) { result = err; }
  )");
  EXPECT_TRUE(v.is_string());
  EXPECT_NE(v.as_string().find("ReferenceError"), std::string::npos);
}

// ------------------------------------------------------------ functions --

TEST(Interp, FunctionDeclarationAndCall) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    function add(a, b) { return a + b; }
    var result = add(2, 3);
  )").as_number(), 5);
}

TEST(Interp, MissingArgumentsAreUndefined) {
  Interpreter interp;
  EXPECT_EQ(run_and_get(interp, R"(
    function probe(a, b) { return typeof b; }
    var result = probe(1);
  )").as_string(), "undefined");
}

TEST(Interp, ClosuresCaptureEnvironment) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    function counter() {
      var n = 0;
      return function () { n = n + 1; return n; };
    }
    var c = counter();
    c(); c();
    var result = c();
  )").as_number(), 3);
}

TEST(Interp, RecursionWorks) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
    var result = fib(10);
  )").as_number(), 55);
}

TEST(Interp, DeepRecursionIsBounded) {
  Interpreter interp;
  EXPECT_THROW(run_and_get(interp, R"(
    function forever(n) { return forever(n + 1); }
    forever(0);
  )"), ScriptError);
}

TEST(Interp, ArgumentsObject) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    function count() { return arguments.length; }
    var result = count(1, "a", true);
  )").as_number(), 3);
}

// ----------------------------------------------- prototypes & new -------

TEST(Interp, NewUsesConstructorPrototype) {
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef proto = heap.make_object(ObjectRef(), "GadgetPrototype");
  heap.define_property(proto, "ping", Value(heap.make_function(
      [](Interpreter&, const Value&, std::span<const Value>) {
        return Value("pong");
      },
      "ping")));
  const ObjectRef ctor = heap.make_function(
      [](Interpreter&, const Value&, std::span<const Value>) {
        return Value();
      },
      "Gadget");
  heap.define_property(ctor, "prototype", Value(proto));
  interp.globals().define("Gadget", Value(ctor));

  EXPECT_EQ(run_and_get(interp, R"(
    var g = new Gadget();
    var result = g.ping();
  )").as_string(), "pong");
}

TEST(Interp, MethodCallBindsThis) {
  Interpreter interp;
  EXPECT_DOUBLE_EQ(run_and_get(interp, R"(
    var obj = { value: 41, bump: function () { this.value = this.value + 1; return this.value; } };
    var result = obj.bump();
  )").as_number(), 42);
}

TEST(Interp, PrototypeChainLookup) {
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef base = heap.make_object();
  heap.define_property(base, "inherited", Value(7.0));
  const ObjectRef derived = heap.make_object(base);
  interp.globals().define("derived", Value(derived));
  EXPECT_DOUBLE_EQ(
      run_and_get(interp, "var result = derived.inherited;").as_number(), 7);
  // own properties shadow the prototype
  run_and_get(interp, "derived.inherited = 9; var result = derived.inherited;");
  EXPECT_DOUBLE_EQ(interp.globals().lookup("result")->as_number(), 9);
  EXPECT_DOUBLE_EQ(heap.get_property(base, "inherited").as_number(), 7);
}

// ------------------------------------------------------ watch handlers ---

TEST(Interp, WatchFiresOnPropertyWrites) {
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef obj = heap.make_object();
  std::vector<std::string> writes;
  heap.get(obj).watch = [&writes](const std::string& name, const Value&) {
    writes.push_back(name);
  };
  interp.globals().define("nav", Value(obj));
  run_and_get(interp, "nav.userToken = \"x\"; nav.other = 1; var result = 0;");
  EXPECT_EQ(writes, (std::vector<std::string>{"userToken", "other"}));
}

TEST(Interp, WatchDoesNotFireOnReads) {
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef obj = heap.make_object();
  int fires = 0;
  heap.define_property(obj, "p", Value(1.0));
  heap.get(obj).watch = [&fires](const std::string&, const Value&) { ++fires; };
  interp.globals().define("o", Value(obj));
  run_and_get(interp, "var result = o.p + o.p;");
  EXPECT_EQ(fires, 0);
}

// --------------------------------------------------------------- errors --

TEST(Interp, ReferenceAndTypeErrors) {
  Interpreter interp;
  EXPECT_THROW(run_and_get(interp, "ghost();"), ScriptError);
  EXPECT_THROW(run_and_get(interp, "var x = 1; x.method();"), ScriptError);
  EXPECT_THROW(run_and_get(interp, "var u; u.prop;"), ScriptError);
  EXPECT_THROW(run_and_get(interp, "null.x = 1;"), ScriptError);
}

TEST(Interp, FuelBudgetStopsRunawayScripts) {
  Interpreter interp;
  interp.set_fuel_per_run(5000);
  EXPECT_THROW(run_and_get(interp, "while (true) { var x = 1; }"),
               ScriptError);
  // the budget resets per top-level run
  EXPECT_NO_THROW(run_and_get(interp, "var result = 1;"));
}

TEST(ScriptParser, SyntaxErrors) {
  EXPECT_THROW(parse_program("var = 5;"), SyntaxError);
  EXPECT_THROW(parse_program("var x = ;"), SyntaxError);
  EXPECT_THROW(parse_program("function () { return"), SyntaxError);
  EXPECT_THROW(parse_program("if (x { }"), SyntaxError);
  EXPECT_THROW(parse_program("1 + 2"), SyntaxError);  // missing semicolon
}

// -------------------------------------------------------------- builtins --

TEST(Builtins, MathFunctions) {
  EXPECT_DOUBLE_EQ(eval("Math.floor(2.9)").as_number(), 2);
  EXPECT_DOUBLE_EQ(eval("Math.ceil(2.1)").as_number(), 3);
  EXPECT_DOUBLE_EQ(eval("Math.abs(-5)").as_number(), 5);
  EXPECT_DOUBLE_EQ(eval("Math.max(1, 7, 3)").as_number(), 7);
  EXPECT_DOUBLE_EQ(eval("Math.min(4, 2, 9)").as_number(), 2);
  EXPECT_DOUBLE_EQ(eval("Math.pow(2, 10)").as_number(), 1024);
  EXPECT_DOUBLE_EQ(eval("Math.sqrt(81)").as_number(), 9);
}

TEST(Builtins, MathRandomIsDeterministicPerSeed) {
  Interpreter a(99), b(99), c(100);
  const double va =
      run_and_get(a, "var result = Math.random();").as_number();
  const double vb =
      run_and_get(b, "var result = Math.random();").as_number();
  const double vc =
      run_and_get(c, "var result = Math.random();").as_number();
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
  EXPECT_GE(va, 0.0);
  EXPECT_LT(va, 1.0);
}

TEST(Builtins, ConversionHelpers) {
  EXPECT_EQ(eval("String(42)").as_string(), "42");
  EXPECT_DOUBLE_EQ(eval("Number(\"3.5\")").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(eval("parseInt(\"7.9\")").as_number(), 7);
  EXPECT_TRUE(eval("isNaN(Number(\"xyz\"))").as_bool());
  EXPECT_FALSE(eval("isNaN(5)").as_bool());
}

// --------------------------------------------------------------- values --

TEST(Values, Truthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(Null{}).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_TRUE(Value(1.0).truthy());
  EXPECT_TRUE(Value("x").truthy());
}

TEST(Values, DisplayStrings) {
  EXPECT_EQ(Value(42.0).to_display_string(), "42");
  EXPECT_EQ(Value(2.5).to_display_string(), "2.5");
  EXPECT_EQ(Value(true).to_display_string(), "true");
  EXPECT_EQ(Value().to_display_string(), "undefined");
  EXPECT_EQ(Value(Null{}).to_display_string(), "null");
}

TEST(Values, HeapRejectsBadRefs) {
  Heap heap;
  EXPECT_THROW(heap.get(ObjectRef()), std::out_of_range);
  EXPECT_THROW(heap.get(ObjectRef(12345)), std::out_of_range);
}

// Property-access sweep: table-driven expression checks.
struct ExprCase {
  const char* source;
  double expected;
};

class ExpressionSweep : public ::testing::TestWithParam<ExprCase> {};

TEST_P(ExpressionSweep, Evaluates) {
  EXPECT_DOUBLE_EQ(eval(GetParam().source).to_number(), GetParam().expected)
      << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, ExpressionSweep,
    ::testing::Values(ExprCase{"2 + 3 * 4 - 1", 13},
                      ExprCase{"(2 + 3) * (4 - 1)", 15},
                      ExprCase{"1 / 4 + 1 / 4", 0.5},
                      ExprCase{"10 % 3 + 20 % 7", 7},
                      ExprCase{"1 < 2 ? 10 : 20", 10},
                      ExprCase{"!false ? 1 : 0", 1},
                      ExprCase{"[1,2,3,4].length", 4},
                      ExprCase{"({n: 5}).n * 2", 10},
                      ExprCase{"Math.max(1, Math.min(9, 5))", 5},
                      ExprCase{"\"ab\".length + \"c\".length", 3}));


// ------------------------------------------------------------- atoms --

TEST(Atoms, EmptyNameInternsLikeAnyOther) {
  AtomTable atoms;
  const Atom empty = atoms.intern("");
  EXPECT_NE(empty, kNoAtom);
  EXPECT_EQ(atoms.intern(""), empty);  // idempotent
  EXPECT_EQ(atoms.name(empty), "");
  // The empty name works end to end as a property key.
  Heap heap;
  const ObjectRef obj = heap.make_object();
  heap.set_property(obj, "", Value(7.0));
  EXPECT_DOUBLE_EQ(heap.get_property(obj, "").as_number(), 7.0);
}

TEST(Atoms, DuplicateInternReturnsTheSameAtomWithoutGrowth) {
  AtomTable atoms;
  const Atom a = atoms.intern("foo");
  const std::size_t size = atoms.size();
  EXPECT_EQ(atoms.intern("foo"), a);
  EXPECT_EQ(atoms.size(), size);  // no duplicate entry
  // Interning goes by content, not string identity.
  std::string spelled = "fo";
  spelled += "o";
  EXPECT_EQ(atoms.intern(spelled), a);
  EXPECT_NE(atoms.intern("bar"), a);
}

TEST(Atoms, LookupNeverInserts) {
  AtomTable atoms;
  const std::size_t size = atoms.size();
  EXPECT_EQ(atoms.lookup("never-interned"), kNoAtom);
  EXPECT_EQ(atoms.size(), size);
}

TEST(Atoms, EnumerationFollowsInsertionOrderAcrossOverwrites) {
  Heap heap;
  const ObjectRef obj = heap.make_object();
  heap.set_property(obj, "z", Value(1.0));
  heap.set_property(obj, "a", Value(2.0));
  heap.set_property(obj, "m", Value(3.0));
  const std::uint32_t shape = heap.get(obj).properties.shape();
  heap.set_property(obj, "a", Value(9.0));  // value overwrite
  const auto slots = heap.get(obj).properties.slots();
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(heap.atoms().name(slots[0].atom), "z");
  EXPECT_EQ(heap.atoms().name(slots[1].atom), "a");
  EXPECT_EQ(heap.atoms().name(slots[2].atom), "m");
  EXPECT_DOUBLE_EQ(slots[1].value.as_number(), 9.0);
  // Overwrite keeps the layout: caches guarding on shape stay valid.
  EXPECT_EQ(heap.get(obj).properties.shape(), shape);

  // Delete + re-add moves the key to the end (and bumps the shape twice).
  heap.delete_property(obj, "z");
  heap.set_property(obj, "z", Value(4.0));
  const auto reordered = heap.get(obj).properties.slots();
  ASSERT_EQ(reordered.size(), 3u);
  EXPECT_EQ(heap.atoms().name(reordered[0].atom), "a");
  EXPECT_EQ(heap.atoms().name(reordered[1].atom), "m");
  EXPECT_EQ(heap.atoms().name(reordered[2].atom), "z");
  EXPECT_NE(heap.get(obj).properties.shape(), shape);
}

TEST(Atoms, ReplacedPrototypeMethodIsSeenByWarmInlineCaches) {
  // The extension-shim scenario, distilled: warm a call site's inline cache
  // on a prototype method, replace the method *in place* (as
  // MeasuringExtension::inject does), rerun the same AST. The cache may
  // keep its (shape, slot) entry — the slot now holds the shim — but it
  // must not keep serving the original.
  Interpreter interp;
  Heap& heap = interp.heap();
  const ObjectRef proto = heap.make_object();
  int original_calls = 0;
  int shim_calls = 0;
  heap.define_property(
      proto, "ping",
      Value(heap.make_function(
          [&](Interpreter&, const Value&, std::span<const Value>) {
            ++original_calls;
            return Value(1.0);
          },
          "ping")));
  const ObjectRef obj = heap.make_object(proto);
  interp.globals().define("target", Value(obj));

  static std::vector<std::unique_ptr<Program>> retained;
  retained.push_back(std::make_unique<Program>(parse_program(
      "var i = 0; for (i = 0; i < 20; i = i + 1) { target.ping(); }")));
  interp.execute(*retained.back());
  EXPECT_EQ(original_calls, 20);

  // In-place overwrite of the same slot: shape does not change.
  Value* slot = heap.own_property(proto, "ping");
  ASSERT_NE(slot, nullptr);
  *slot = Value(heap.make_function(
      [&](Interpreter&, const Value&, std::span<const Value>) {
        ++shim_calls;
        return Value(2.0);
      },
      "ping-shim"));

  interp.execute(*retained.back());  // same AST, warmed caches
  EXPECT_EQ(original_calls, 20);  // original never called again
  EXPECT_EQ(shim_calls, 20);      // every call went through the shim
}

}  // namespace
}  // namespace fu::script
