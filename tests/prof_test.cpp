// Tests for the continuous-profiling stack: the cooperative sampler
// (per-thread frame stacks, label interning, the one-live-profiler rule),
// the folded-profile model (parse/render round-trip, per-standard
// attribution, summaries, diff, flamegraph), and the /profilez + /buildz
// endpoints riding obs::Server — including the access-log satellite.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/folded.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/server.h"

namespace fu::obs {
namespace {

// ---------------------------------------------------------------------------
// Label interning

TEST(ProfLabels, InternIsStableAndNonZero) {
  const std::uint32_t a = prof::intern_label("prof-test-label-a");
  const std::uint32_t b = prof::intern_label("prof-test-label-b");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(prof::intern_label("prof-test-label-a"), a);
}

TEST(ProfLabels, InternStaticKeysOnPointer) {
  static const char* kLabel = "prof-test-static";
  const std::uint32_t first = prof::intern_static(kLabel);
  EXPECT_NE(first, 0u);
  EXPECT_EQ(prof::intern_static(kLabel), first);
  // Same *text* through the dynamic interner also lands on the same id —
  // the static path is a cache in front of the same table.
  EXPECT_EQ(prof::intern_label("prof-test-static"), first);
}

// ---------------------------------------------------------------------------
// Profiler

// Runs `work` on `threads` labelled threads under a live profiler until at
// least `min_samples` were taken, then returns the folded profile.
template <typename Work>
FoldedProfile profile_workload(int threads, std::uint64_t min_samples,
                               const Work& work) {
  Profiler profiler(997.0);
  profiler.start();
  std::atomic<bool> stop{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      prof::set_thread_label("prof-test-" + std::to_string(t));
      while (!stop.load(std::memory_order_relaxed)) work(t);
    });
  }
  while (profiler.samples() < min_samples) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (std::thread& thread : pool) thread.join();
  return profiler.stop();
}

TEST(Profiler, SamplesLabelledFrameStacks) {
  static const char* kOuter = "prof-outer";
  static const char* kInner = "prof-inner";
  const FoldedProfile profile =
      profile_workload(2, 200, [](int) {
        StageFrame outer(kOuter);
        StageFrame inner(kInner);
        // Hold the stack open long enough for the sampler to see it.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      });

  EXPECT_GE(profile.total(), 200u);
  bool saw_nested = false;
  for (const auto& [stack, samples] : profile.stacks) {
    EXPECT_NE(samples, 0u);
    EXPECT_EQ(stack.rfind("prof-test-", 0), 0u) << stack;
    if (stack.find("prof-outer;prof-inner") != std::string::npos) {
      saw_nested = true;
    }
  }
  EXPECT_TRUE(saw_nested) << profile.to_text();
}

TEST(Profiler, FeatureFramesResolveThroughTable) {
  std::vector<prof::FeatureLabel> table(3);
  table[2] = {"std:TST/Window.prototype.probe", "TST"};
  prof::set_feature_table(table);

  const FoldedProfile profile = profile_workload(1, 100, [](int) {
    ProfFrame feature(FrameKind::kFeature, 2);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  });
  prof::set_feature_table({});  // do not leak into other tests

  bool saw_feature = false;
  for (const auto& [stack, samples] : profile.stacks) {
    if (stack.find("std:TST/Window.prototype.probe") != std::string::npos) {
      saw_feature = true;
    }
  }
  EXPECT_TRUE(saw_feature) << profile.to_text();
  const std::vector<StandardShare> shares = standards_breakdown(profile);
  ASSERT_FALSE(shares.empty());
  EXPECT_EQ(shares.front().standard, "TST");
}

TEST(Profiler, SecondLiveProfilerThrows) {
  Profiler first(101.0);
  first.start();
  Profiler second(101.0);
  EXPECT_THROW(second.start(), std::logic_error);
  first.stop();
  // With the first one stopped, the slot frees up again.
  Profiler third(101.0);
  third.start();
  third.stop();
}

TEST(Profiler, StopIsIdempotent) {
  Profiler profiler(211.0);
  profiler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const FoldedProfile once = profiler.stop();
  const FoldedProfile twice = profiler.stop();
  EXPECT_EQ(once.stacks, twice.stacks);
}

TEST(Profiler, DisabledHooksRecordNothing) {
  ASSERT_FALSE(prof::enabled());
  {
    StageFrame stage("prof-disabled-stage");
    ProfFrame feature(FrameKind::kFeature, 7);
  }
  Profiler profiler(997.0);
  profiler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const FoldedProfile profile = profiler.stop();
  for (const auto& [stack, samples] : profile.stacks) {
    EXPECT_EQ(stack.find("prof-disabled-stage"), std::string::npos) << stack;
  }
}

TEST(Profiler, ScopeOpenedBeforeStartStaysBalanced) {
  // A frame constructed with no profiler live must not push — and must not
  // pop either when a profiler starts before the scope closes.
  ASSERT_FALSE(prof::enabled());
  Profiler profiler(997.0);
  {
    StageFrame premature("prof-premature");
    profiler.start();
    // ~premature runs while enabled; it remembers it never pushed.
  }
  static const char* kAfter = "prof-after";
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    prof::set_thread_label("prof-balance");
    while (!stop.load(std::memory_order_relaxed)) {
      StageFrame frame(kAfter);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  while (profiler.samples() < 50) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  worker.join();
  const FoldedProfile profile = profiler.stop();
  for (const auto& [stack, samples] : profile.stacks) {
    if (stack.rfind("prof-balance", 0) != 0) continue;
    // The premature frame never leaks underneath the real one.
    EXPECT_EQ(stack.find("prof-premature"), std::string::npos) << stack;
  }
}

TEST(Profiler, ProfileForSamplesTheCallerWindow) {
  std::atomic<bool> stop{false};
  std::thread worker([&] {
    prof::set_thread_label("prof-window");
    static const char* kBusy = "prof-busy";
    while (!stop.load(std::memory_order_relaxed)) {
      StageFrame frame(kBusy);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const FoldedProfile profile = profile_for(0.25, 499.0);
  stop.store(true);
  worker.join();
  EXPECT_GT(profile.total(), 0u);
  bool saw = false;
  for (const auto& [stack, samples] : profile.stacks) {
    if (stack.find("prof-busy") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw) << profile.to_text();
}

// ---------------------------------------------------------------------------
// Folded profiles

TEST(Folded, TextRoundTrips) {
  FoldedProfile profile;
  profile.add("worker-0;site-visit;execute", 5);
  profile.add("worker-0;site-visit", 12);
  profile.add("worker-1;parse", 3);
  profile.add("worker-0;site-visit;execute", 2);  // merges

  const std::string text = profile.to_text();
  const FoldedProfile parsed = FoldedProfile::parse(text);
  EXPECT_EQ(parsed.stacks, profile.stacks);
  EXPECT_EQ(parsed.total(), 22u);
}

TEST(Folded, ParseRejectsMalformedLines) {
  EXPECT_THROW(FoldedProfile::parse("a;b\n"), std::runtime_error);
  EXPECT_THROW(FoldedProfile::parse("a;b twelve\n"), std::runtime_error);
  EXPECT_THROW(FoldedProfile::parse(" 5\n"), std::runtime_error);
  try {
    FoldedProfile::parse("ok;stack 1\nbroken\n");
    FAIL() << "second line should have thrown";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("2"), std::string::npos)
        << error.what();
  }
  // Blank lines are fine.
  EXPECT_EQ(FoldedProfile::parse("a;b 1\n\n\nc 2\n").total(), 3u);
}

TEST(Folded, ClassifiesFramesFromTextAlone) {
  EXPECT_EQ(classify_frame("worker-0", true), FrameClass::kThread);
  EXPECT_EQ(classify_frame("site-visit", false), FrameClass::kStage);
  EXPECT_EQ(classify_frame("script:site0.com/app.js", false),
            FrameClass::kScript);
  EXPECT_EQ(classify_frame("fn:render", false), FrameClass::kFunction);
  EXPECT_EQ(classify_frame("std:DOM1/Document.prototype.createElement",
                           false),
            FrameClass::kStandard);
}

TEST(Folded, StandardsBreakdownChargesDeepestShim) {
  FoldedProfile profile;
  profile.add("w;visit;std:DOM/a;fn:x;std:CSS/b", 6);  // deepest shim: CSS
  profile.add("w;visit;std:DOM/a", 3);
  profile.add("w;visit", 1);  // no shim: engine

  const std::vector<StandardShare> shares = standards_breakdown(profile);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].standard, "CSS");
  EXPECT_EQ(shares[0].samples, 6u);
  EXPECT_NEAR(shares[0].pct, 60.0, 0.01);
  EXPECT_EQ(shares[1].standard, "DOM");
  EXPECT_EQ(shares[1].samples, 3u);
  EXPECT_EQ(shares[2].standard, "(engine)");
  EXPECT_EQ(shares[2].samples, 1u);

  const std::string csv = standards_csv(profile);
  EXPECT_EQ(csv.rfind("standard,samples,pct\n", 0), 0u) << csv;
  EXPECT_NE(csv.find("CSS,6,60.000"), std::string::npos) << csv;
}

TEST(Folded, StandardsBreakdownSeparatesSessionSetupFromEngine) {
  FoldedProfile profile;
  profile.add("w;site-visit;session-clone", 4);
  profile.add("w;session-snapshot-build", 2);
  profile.add("w;site-visit", 3);  // engine time outside setup stages
  // A shim frame above a setup stage still wins: real standard work.
  profile.add("w;site-visit;session-clone;std:DOM/a", 1);

  const std::vector<StandardShare> shares = standards_breakdown(profile);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_EQ(shares[0].standard, "(session-setup)");
  EXPECT_EQ(shares[0].samples, 6u);
  EXPECT_EQ(shares[1].standard, "(engine)");
  EXPECT_EQ(shares[1].samples, 3u);
  EXPECT_EQ(shares[2].standard, "DOM");
  EXPECT_EQ(shares[2].samples, 1u);

  const std::string csv = standards_csv(profile);
  EXPECT_NE(csv.find("(session-setup),6,60.000"), std::string::npos) << csv;
}

TEST(Folded, SummaryAndJsonAgree) {
  FoldedProfile profile;
  profile.add("w0;visit;execute;fn:tick", 4);
  profile.add("w0;visit;parse", 6);
  const std::string summary = render_prof_summary(profile);
  EXPECT_NE(summary.find("samples: 10"), std::string::npos) << summary;
  EXPECT_NE(summary.find("parse"), std::string::npos);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(prof_summary_json(profile), doc, &error)) << error;
  EXPECT_EQ(doc.number_or("total", -1), 10);
  // Each sample charges its deepest stage frame, so the two stacks split
  // into execute (under visit) and parse.
  const JsonValue* stages = doc.find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->number_or("execute", -1), 4);
  EXPECT_EQ(stages->number_or("parse", -1), 6);
}

TEST(Folded, DiffComparesShares) {
  FoldedProfile before;
  before.add("w;parse", 50);
  before.add("w;execute", 50);
  FoldedProfile after;  // parse doubled its share, execute shrank
  after.add("w;parse", 150);
  after.add("w;execute", 50);
  const std::string diff = render_prof_diff(before, after);
  EXPECT_NE(diff.find("parse"), std::string::npos) << diff;
  EXPECT_NE(diff.find("+"), std::string::npos) << diff;
}

TEST(Folded, FlamegraphIsSelfContained) {
  FoldedProfile profile;
  profile.add("w0;visit;execute", 3);
  // Script frames carry page URLs — they belong in the embedded data and
  // must not trip the no-external-assets checks below.
  profile.add("w0;visit;execute;script:http://www.site1.org/js/app0.js", 2);
  const std::string html = flamegraph_html(profile, "test profile");
  EXPECT_NE(html.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(html.find("execute"), std::string::npos);
  EXPECT_NE(html.find("test profile"), std::string::npos);
  EXPECT_NE(html.find("app0.js"), std::string::npos);
  // Self-contained: no external scripts, styles or fonts.
  EXPECT_EQ(html.find("src=\"http"), std::string::npos);
  EXPECT_EQ(html.find("href=\"http"), std::string::npos);
  EXPECT_EQ(html.find("src='http"), std::string::npos);
  EXPECT_EQ(html.find("href='http"), std::string::npos);
  EXPECT_EQ(html.find("@import"), std::string::npos);
}

// ---------------------------------------------------------------------------
// /profilez and /buildz over obs::Server

TEST(Server, ProfilezReturnsFoldedSamples) {
  Registry registry;
  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  Server server(std::move(options));
  ASSERT_TRUE(server.ok()) << server.error();

  std::atomic<bool> stop{false};
  std::thread worker([&] {
    prof::set_thread_label("profilez-worker");
    static const char* kStage = "profilez-stage";
    while (!stop.load(std::memory_order_relaxed)) {
      StageFrame frame(kStage);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  int status = 0;
  std::string body, error;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(),
                       "/profilez?seconds=0.3&hz=499", status, body, &error,
                       30.0))
      << error;
  stop.store(true);
  worker.join();
  EXPECT_EQ(status, 200) << body;

  const FoldedProfile profile = FoldedProfile::parse(body);
  EXPECT_GT(profile.total(), 0u);
  bool saw = false;
  for (const auto& [stack, samples] : profile.stacks) {
    if (stack.find("profilez-stage") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw) << body;
}

TEST(Server, ProfilezConflictsWithLiveProfiler) {
  Registry registry;
  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  Server server(std::move(options));
  ASSERT_TRUE(server.ok()) << server.error();

  Profiler owner(97.0);  // what --profile-out does for a whole survey
  owner.start();
  int status = 0;
  std::string body, error;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/profilez?seconds=0.1",
                       status, body, &error, 30.0))
      << error;
  owner.stop();
  EXPECT_EQ(status, 409) << body;
}

TEST(Server, BuildzReportsBuildIdentity) {
  Registry registry;
  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.build_extra.emplace_back("catalog_fingerprint", "0xabc");
  Server server(std::move(options));
  ASSERT_TRUE(server.ok()) << server.error();

  int status = 0;
  std::string body, error;
  ASSERT_TRUE(http_get("127.0.0.1", server.port(), "/buildz", status, body,
                       &error))
      << error;
  EXPECT_EQ(status, 200);
  JsonValue doc;
  ASSERT_TRUE(json_parse(body, doc, &error)) << error << "\n" << body;
  EXPECT_FALSE(doc.string_or("git", "").empty());
  EXPECT_FALSE(doc.string_or("build_type", "").empty());
  EXPECT_FALSE(doc.string_or("compiler", "").empty());
  const JsonValue* sanitizers = doc.find("sanitizers");
  ASSERT_NE(sanitizers, nullptr);
  EXPECT_TRUE(sanitizers->is_array());
  EXPECT_EQ(doc.string_or("catalog_fingerprint", ""), "0xabc");
}

// ---------------------------------------------------------------------------
// Access log

TEST(Server, AccessLogSeesEveryRequest) {
  Registry registry;
  std::mutex mutex;
  std::vector<AccessLogEntry> entries;
  ServerOptions options;
  options.port = 0;
  options.registry = &registry;
  options.access_log = [&](const AccessLogEntry& entry) {
    std::lock_guard<std::mutex> lock(mutex);
    entries.push_back(entry);
  };
  Server server(std::move(options));
  ASSERT_TRUE(server.ok()) << server.error();

  int status = 0;
  std::string body;
  ASSERT_TRUE(
      http_get("127.0.0.1", server.port(), "/healthz", status, body));
  EXPECT_EQ(status, 200);
  ASSERT_TRUE(
      http_get("127.0.0.1", server.port(), "/no-such-path", status, body));
  EXPECT_EQ(status, 404);

  // The log callback runs on the serving thread right after the response is
  // queued; both requests completed, so both entries are visible now.
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].method, "GET");
  EXPECT_EQ(entries[0].path, "/healthz");
  EXPECT_EQ(entries[0].status, 200);
  EXPECT_EQ(entries[1].path, "/no-such-path");
  EXPECT_EQ(entries[1].status, 404);
}

TEST(AccessLog, LineIsOneJsonObject) {
  AccessLogEntry entry;
  entry.method = "GET";
  entry.path = "/metrics.json";
  entry.status = 200;
  entry.duration_us = 1234;
  const std::string line = access_log_line(entry);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(line, doc, &error)) << error << "\n" << line;
  EXPECT_EQ(doc.string_or("method", ""), "GET");
  EXPECT_EQ(doc.string_or("path", ""), "/metrics.json");
  EXPECT_EQ(doc.number_or("status", -1), 200);
  EXPECT_EQ(doc.number_or("duration_us", -1), 1234);
}

}  // namespace
}  // namespace fu::obs
